// Package bptree implements a disk-resident B+-tree over fixed-size
// records, bulk-loaded bottom-up from sorted input in the style of the
// UB-tree loading algorithm the paper relies on (Algorithm 3): leaves are
// packed to a configurable fill factor and written as one contiguous
// sequential stream, then the internal levels are built on top. The result
// is balanced, contiguous, and densely populated — the three properties
// Coconut-Tree gets from sortable summarizations.
//
// Internal nodes are kept in main memory (the standard assumption for data
// series indexes, §3.1: summarizations are ~1% of the data) and can be
// persisted/reloaded; leaves live in a paged file on the storage VFS, so
// every leaf access shows up in the I/O statistics.
//
// Top-down inserts with median splits are supported for the update
// experiments (Figure 10a).
//
// # Concurrency
//
// A Tree is safe for any number of concurrent READERS (Seek, cursors,
// ReadLeaf, ScanAll, LeafDir, ...): the read path never touches shared
// mutable state — cursors own their page buffers, ReadLeaf draws scratch
// pages from an internal pool, and the single-page write-back cache is
// consulted under a mutex but only populated by writers. Mutations
// (Insert, Save, Close, DropCache) require exclusive access; callers that
// interleave them with reads must serialize externally (core.TreeIndex
// does, with a handle-level RWMutex).
package bptree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/coconut-db/coconut/internal/storage"
)

// RecordSource yields fixed-size records in key order; Next returns io.EOF
// at the end. extsort.RecordReader satisfies it.
type RecordSource interface {
	Next() ([]byte, error)
}

// Config parameterizes a tree.
type Config struct {
	// FS hosts the leaf file.
	FS storage.FS
	// Name is the base file name ("<Name>.leaves" and "<Name>.meta").
	Name string
	// RecordSize is the fixed record size in bytes.
	RecordSize int
	// KeyLen is the number of leading record bytes that form the key;
	// keys compare with bytes.Compare.
	KeyLen int
	// LeafCap is the maximum number of records per leaf page (the paper's
	// leaf size, 2000 by default in the evaluation).
	LeafCap int
	// FillFactor is the bulk-load leaf fill in (0,1]; 1.0 packs leaves
	// completely ("as compactly as possible", §3.1). Inserting later into
	// full leaves causes median splits.
	FillFactor float64
	// Fanout is the internal node fan-out (default 64).
	Fanout int
	// Checksums gives the leaf file a checksummed physical layout: one
	// CRC32-C-guarded block per page (storage.ChecksumFile, block size ==
	// pageSize), so a flipped bit on disk surfaces as ErrCorrupt instead
	// of a silently wrong page. The flag describes the stored bytes — a
	// tree must be opened with the same value it was built with; the index
	// manifest records it.
	Checksums bool
}

func (c *Config) validate() error {
	switch {
	case c.FS == nil:
		return errors.New("bptree: nil FS")
	case c.Name == "":
		return errors.New("bptree: empty name")
	case c.RecordSize <= 0:
		return errors.New("bptree: record size must be positive")
	case c.KeyLen <= 0 || c.KeyLen > c.RecordSize:
		return errors.New("bptree: key length must be in [1, record size]")
	case c.LeafCap <= 1:
		return errors.New("bptree: leaf capacity must exceed 1")
	}
	if c.FillFactor <= 0 || c.FillFactor > 1 {
		c.FillFactor = 1
	}
	if c.Fanout < 2 {
		c.Fanout = 64
	}
	return nil
}

// ErrCorruptPage reports a leaf page that cannot be produced intact: a
// checksum mismatch, a page id outside the allocated range, or a leaf file
// shorter than the page directory claims. It wraps storage.ErrCorruptData
// so callers can match either.
var ErrCorruptPage = fmt.Errorf("bptree: corrupt page: %w", storage.ErrCorruptData)

// Leaf page layout: count uint32 | next int64 | prev int64 | records.
const pageHeader = 4 + 8 + 8

func (c Config) pageSize() int64 { return int64(pageHeader + c.RecordSize*c.LeafCap) }

// node is an in-memory internal node. level 1 nodes point at leaf pages;
// higher levels point at other nodes. keys[i] is the smallest key reachable
// under child i+1 (len(keys) == len(children)-1).
type node struct {
	level    int
	keys     [][]byte
	children []*node // level > 1
	leafIDs  []int64 // level == 1
}

func (n *node) width() int {
	if n.level == 1 {
		return len(n.leafIDs)
	}
	return len(n.children)
}

// Tree is a B+-tree handle.
type Tree struct {
	cfg   Config
	f     storage.File
	root  *node
	count int64
	// leafDir lists the leaves in chain (key) order with their live record
	// counts — the in-memory leaf directory used for skip-sequential scans.
	leafDir []int64
	leafCnt map[int64]int
	// leafSep[id] is a valid separator for leaf id: every key in earlier
	// leaves is < it, every key in id and later leaves is >= it (except the
	// leftmost leaf, which can absorb smaller keys). Used to rebuild the
	// internal levels on Open.
	leafSep  map[int64][]byte
	nextPage int64
	// single-page write-back cache: batch inserts sorted by key hit the
	// same page repeatedly, which is exactly the locality Coconut's batch
	// updates exploit (Figure 10a). Only the insert path populates and
	// mutates it (partly outside cacheMu — writers rely on the package
	// contract that no reads run concurrently with mutations). Readers
	// peek at it under cacheMu so that a read FOLLOWING an insert on the
	// same handle sees the not-yet-flushed dirty page; reader-vs-reader,
	// the cache is never written, so the read path stays race-free.
	cacheMu    sync.Mutex
	cachePage  int64
	cacheBuf   []byte
	cacheDirty bool
	// pagePool recycles page-sized scratch buffers for the read path.
	pagePool sync.Pool
}

// initPagePool wires the scratch-page pool; called by both constructors.
func (t *Tree) initPagePool() {
	size := t.cfg.pageSize()
	t.pagePool.New = func() any { return make([]byte, size) }
}

// leafFileName returns the on-device file holding the leaves.
func (c Config) leafFileName() string { return c.Name + ".leaves" }

// metaFileName returns the on-device file holding meta + internal nodes.
func (c Config) metaFileName() string { return c.Name + ".meta" }

// BulkLoad builds a tree bottom-up from records in key order. Input order
// is validated; out-of-order input is an error (the caller sorts first —
// that is the whole point of sortable summarizations).
func BulkLoad(cfg Config, src RecordSource) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	inner, err := cfg.FS.Create(cfg.leafFileName())
	if err != nil {
		return nil, err
	}
	f := storage.File(inner)
	if cfg.Checksums {
		if f, err = storage.CreateChecksumFile(inner, int(cfg.pageSize())); err != nil {
			inner.Close()
			return nil, err
		}
	}
	t := &Tree{cfg: cfg, f: f, leafCnt: make(map[int64]int), leafSep: make(map[int64][]byte), cachePage: -1}
	t.initPagePool()

	fill := int(float64(cfg.LeafCap) * cfg.FillFactor)
	if fill < 1 {
		fill = 1
	}

	w := storage.NewSequentialWriter(f, 0, 0)
	page := make([]byte, cfg.pageSize())
	inPage := 0
	var firstKeys [][]byte
	var prevKey []byte

	flush := func(last bool) error {
		if inPage == 0 {
			return nil
		}
		id := t.nextPage
		next := int64(-1)
		if !last {
			next = id + 1
		}
		binary.LittleEndian.PutUint32(page[0:], uint32(inPage))
		binary.LittleEndian.PutUint64(page[4:], uint64(next))
		binary.LittleEndian.PutUint64(page[12:], uint64(id-1)) // prev; -1 for first
		if _, err := w.Write(page); err != nil {
			return err
		}
		t.leafDir = append(t.leafDir, id)
		t.leafCnt[id] = inPage
		t.nextPage++
		key := make([]byte, cfg.KeyLen)
		copy(key, page[pageHeader:pageHeader+cfg.KeyLen])
		firstKeys = append(firstKeys, key)
		t.leafSep[id] = key
		for i := range page {
			page[i] = 0
		}
		inPage = 0
		return nil
	}

	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("bptree: bulk load input: %w", err)
		}
		if len(rec) != cfg.RecordSize {
			f.Close()
			return nil, fmt.Errorf("bptree: record size %d, want %d", len(rec), cfg.RecordSize)
		}
		if prevKey != nil && bytes.Compare(rec[:cfg.KeyLen], prevKey) < 0 {
			f.Close()
			return nil, errors.New("bptree: bulk load input not sorted")
		}
		prevKey = append(prevKey[:0], rec[:cfg.KeyLen]...)
		copy(page[pageHeader+inPage*cfg.RecordSize:], rec)
		inPage++
		t.count++
		if inPage == fill {
			if err := flush(false); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	if err := flush(true); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	// Fix the next pointer of the final page (it was written assuming a
	// successor when it filled exactly at the boundary).
	if len(t.leafDir) > 0 {
		if err := t.setNextPtr(t.leafDir[len(t.leafDir)-1], -1); err != nil {
			f.Close()
			return nil, err
		}
	}
	t.buildInternal(firstKeys)
	return t, nil
}

// buildInternal constructs the in-memory levels bottom-up.
func (t *Tree) buildInternal(firstKeys [][]byte) {
	if len(t.leafDir) == 0 {
		t.root = &node{level: 1}
		return
	}
	// Level 1: group leaves.
	var level []*node
	var levelKeys [][]byte
	for lo := 0; lo < len(t.leafDir); lo += t.cfg.Fanout {
		hi := lo + t.cfg.Fanout
		if hi > len(t.leafDir) {
			hi = len(t.leafDir)
		}
		n := &node{level: 1, leafIDs: append([]int64(nil), t.leafDir[lo:hi]...)}
		for i := lo + 1; i < hi; i++ {
			n.keys = append(n.keys, firstKeys[i])
		}
		level = append(level, n)
		levelKeys = append(levelKeys, firstKeys[lo])
	}
	lvl := 2
	for len(level) > 1 {
		var up []*node
		var upKeys [][]byte
		for lo := 0; lo < len(level); lo += t.cfg.Fanout {
			hi := lo + t.cfg.Fanout
			if hi > len(level) {
				hi = len(level)
			}
			n := &node{level: lvl, children: append([]*node(nil), level[lo:hi]...)}
			for i := lo + 1; i < hi; i++ {
				n.keys = append(n.keys, levelKeys[i])
			}
			up = append(up, n)
			upKeys = append(upKeys, levelKeys[lo])
		}
		level, levelKeys = up, upKeys
		lvl++
	}
	t.root = level[0]
}

// Count returns the number of records in the tree.
func (t *Tree) Count() int64 { return t.count }

// NumLeaves returns the number of leaf pages.
func (t *Tree) NumLeaves() int { return len(t.leafDir) }

// Height returns the number of levels including the leaf level.
func (t *Tree) Height() int {
	if t.root == nil {
		return 0
	}
	return t.root.level + 1
}

// AvgLeafFill returns the mean leaf occupancy in [0,1] — Coconut-Tree's
// headline space property (97% in the paper vs ~10% for prefix splitting).
func (t *Tree) AvgLeafFill() float64 {
	if len(t.leafDir) == 0 {
		return 0
	}
	total := 0
	for _, id := range t.leafDir {
		total += t.leafCnt[id]
	}
	return float64(total) / float64(len(t.leafDir)*t.cfg.LeafCap)
}

// SizeBytes returns the on-device size of the index (leaf file; internal
// nodes add their serialized size after Save).
func (t *Tree) SizeBytes() int64 {
	size, err := t.f.Size()
	if err != nil {
		return 0
	}
	return size
}

// Close flushes the page cache and releases the leaf file.
func (t *Tree) Close() error {
	if err := t.flushCache(); err != nil {
		return err
	}
	return t.f.Close()
}

// --- page access ---------------------------------------------------------

func (t *Tree) pageOffset(id int64) int64 { return id * t.cfg.pageSize() }

// readPage copies page id into dst (len >= pageSize) without mutating any
// shared state, which makes it safe for concurrent readers (absent
// concurrent mutations — the package contract). A dirty page left in the
// write-back cache by a PRIOR insert is served from there so reads on the
// same handle never observe a stale on-device copy.
func (t *Tree) readPage(id int64, dst []byte) error {
	if id < 0 || id >= t.nextPage {
		return fmt.Errorf("bptree: read page %d: outside allocated range [0,%d): %w", id, t.nextPage, ErrCorruptPage)
	}
	t.cacheMu.Lock()
	if id == t.cachePage && t.cacheBuf != nil {
		copy(dst, t.cacheBuf)
		t.cacheMu.Unlock()
		return nil
	}
	t.cacheMu.Unlock()
	n, err := t.f.ReadAt(dst[:t.cfg.pageSize()], t.pageOffset(id))
	if int64(n) != t.cfg.pageSize() {
		return pageReadError(id, err)
	}
	return nil
}

// pageReadError types a failed page read: EOF-shaped short reads mean the
// leaf file is shorter than the directory claims and checksum mismatches
// mean rot — both corruption; anything else is a device error passed
// through for the retry layer to judge.
func pageReadError(id int64, err error) error {
	switch {
	case err == nil, errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return fmt.Errorf("bptree: read page %d: truncated leaf file: %w", id, ErrCorruptPage)
	case errors.Is(err, storage.ErrCorruptData):
		return fmt.Errorf("bptree: read page %d: %w: %w", id, ErrCorruptPage, err)
	default:
		return fmt.Errorf("bptree: read page %d: %w", id, err)
	}
}

// loadPage returns page id via the write-back cache. Mutating paths only:
// callers may write into the returned buffer and mark the cache dirty, so
// they must have exclusive access to the tree.
func (t *Tree) loadPage(id int64) ([]byte, error) {
	if id < 0 || id >= t.nextPage {
		return nil, fmt.Errorf("bptree: read page %d: outside allocated range [0,%d): %w", id, t.nextPage, ErrCorruptPage)
	}
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if id == t.cachePage {
		return t.cacheBuf, nil
	}
	if err := t.flushCacheLocked(); err != nil {
		return nil, err
	}
	if t.cacheBuf == nil {
		t.cacheBuf = make([]byte, t.cfg.pageSize())
	}
	n, err := t.f.ReadAt(t.cacheBuf, t.pageOffset(id))
	if int64(n) != t.cfg.pageSize() {
		return nil, pageReadError(id, err)
	}
	t.cachePage = id
	t.cacheDirty = false
	return t.cacheBuf, nil
}

func (t *Tree) flushCache() error {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	return t.flushCacheLocked()
}

func (t *Tree) flushCacheLocked() error {
	if t.cacheDirty && t.cachePage >= 0 {
		if _, err := t.f.WriteAt(t.cacheBuf, t.pageOffset(t.cachePage)); err != nil {
			return fmt.Errorf("bptree: write page %d: %w", t.cachePage, err)
		}
	}
	t.cacheDirty = false
	return nil
}

// DropCache flushes and invalidates the page cache — used by experiments to
// model a cold start between construction and querying.
func (t *Tree) DropCache() error {
	t.cacheMu.Lock()
	defer t.cacheMu.Unlock()
	if err := t.flushCacheLocked(); err != nil {
		return err
	}
	t.cachePage = -1
	return nil
}

func pageCount(page []byte) int         { return int(binary.LittleEndian.Uint32(page[0:])) }
func pageNext(page []byte) int64        { return int64(binary.LittleEndian.Uint64(page[4:])) }
func pagePrev(page []byte) int64        { return int64(binary.LittleEndian.Uint64(page[12:])) }
func setPageCount(page []byte, n int)   { binary.LittleEndian.PutUint32(page[0:], uint32(n)) }
func setPageNext(page []byte, id int64) { binary.LittleEndian.PutUint64(page[4:], uint64(id)) }
func setPagePrev(page []byte, id int64) { binary.LittleEndian.PutUint64(page[12:], uint64(id)) }

func (t *Tree) record(page []byte, i int) []byte {
	off := pageHeader + i*t.cfg.RecordSize
	return page[off : off+t.cfg.RecordSize]
}

func (t *Tree) setNextPtr(id, next int64) error {
	page, err := t.loadPage(id)
	if err != nil {
		return err
	}
	setPageNext(page, next)
	t.cacheDirty = true
	return nil
}

// --- search --------------------------------------------------------------

// findLeaf descends to the leaf page where key's first occurrence can live.
// The descent takes child i for the first separator >= key: with duplicate
// keys spanning a leaf boundary (left leaf ends with k, right leaf starts
// with k, separator k), this lands on the LEFT leaf, so Seek finds the
// first occurrence and Insert keeps "left <= separator <= right" intact.
func (t *Tree) findLeaf(key []byte) int64 {
	n := t.root
	for {
		idx := sort.Search(len(n.keys), func(i int) bool {
			return bytes.Compare(n.keys[i], key) >= 0
		})
		if n.level == 1 {
			return n.leafIDs[idx]
		}
		n = n.children[idx]
	}
}

// Cursor iterates records in key order. It holds a private copy of the
// current page, so it remains valid across cache evictions.
type Cursor struct {
	t     *Tree
	page  []byte
	id    int64
	idx   int
	valid bool
}

// Seek positions a cursor at the first record with key >= key, or at the
// end (invalid cursor) when no such record exists.
func (t *Tree) Seek(key []byte) (*Cursor, error) {
	if t.count == 0 {
		return &Cursor{t: t}, nil
	}
	id := t.findLeaf(key)
	c := &Cursor{t: t}
	if err := c.loadLeaf(id); err != nil {
		return nil, err
	}
	n := pageCount(c.page)
	c.idx = sort.Search(n, func(i int) bool {
		return bytes.Compare(c.t.record(c.page, i)[:t.cfg.KeyLen], key) >= 0
	})
	c.valid = true
	if c.idx == n {
		// Key is past this leaf; move to the next one.
		if err := c.Next(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SeekFirst positions at the smallest record.
func (t *Tree) SeekFirst() (*Cursor, error) {
	if len(t.leafDir) == 0 {
		return &Cursor{t: t}, nil
	}
	c := &Cursor{t: t}
	if err := c.loadLeaf(t.leafDir[0]); err != nil {
		return nil, err
	}
	c.valid = pageCount(c.page) > 0
	return c, nil
}

func (c *Cursor) loadLeaf(id int64) error {
	if c.page == nil {
		c.page = make([]byte, c.t.cfg.pageSize())
	}
	if err := c.t.readPage(id, c.page); err != nil {
		return err
	}
	c.id = id
	c.idx = 0
	return nil
}

// Valid reports whether the cursor points at a record.
func (c *Cursor) Valid() bool { return c.valid }

// Record returns the current record (valid until the cursor moves off the
// current page).
func (c *Cursor) Record() []byte { return c.t.record(c.page, c.idx) }

// Key returns the current record's key.
func (c *Cursor) Key() []byte { return c.Record()[:c.t.cfg.KeyLen] }

// LeafID returns the page id under the cursor.
func (c *Cursor) LeafID() int64 { return c.id }

// Next advances to the following record, moving across leaf pages via the
// chain pointers; the cursor becomes invalid at the end.
func (c *Cursor) Next() error {
	if !c.valid && c.page == nil {
		return nil
	}
	c.idx++
	for c.idx >= pageCount(c.page) {
		next := pageNext(c.page)
		if next < 0 {
			c.valid = false
			return nil
		}
		if err := c.loadLeaf(next); err != nil {
			return err
		}
	}
	c.valid = true
	return nil
}

// Prev moves to the preceding record; the cursor becomes invalid before the
// start.
func (c *Cursor) Prev() error {
	if c.page == nil {
		return nil
	}
	c.idx--
	for c.idx < 0 {
		prev := pagePrev(c.page)
		if prev < 0 {
			c.valid = false
			return nil
		}
		if err := c.loadLeaf(prev); err != nil {
			return err
		}
		c.idx = pageCount(c.page) - 1
	}
	c.valid = true
	return nil
}

// ScanAll streams every record in key order through fn. The traversal is
// one sequential pass over the chained leaves.
func (t *Tree) ScanAll(fn func(rec []byte) error) error {
	c, err := t.SeekFirst()
	if err != nil {
		return err
	}
	for c.Valid() {
		if err := fn(c.Record()); err != nil {
			return err
		}
		if err := c.Next(); err != nil {
			return err
		}
	}
	return nil
}

// LeafDir exposes the leaf page ids in key order (do not mutate). Combined
// with LeafRecordCount it drives skip-sequential scans.
func (t *Tree) LeafDir() []int64 { return t.leafDir }

// LeafRecordCount returns the number of live records in leaf id.
func (t *Tree) LeafRecordCount(id int64) int { return t.leafCnt[id] }

// ReadLeaf copies the records of leaf id into buf (which must hold
// LeafRecordCount(id)*RecordSize bytes) and returns the record count. It is
// safe for concurrent callers: the page is staged in a pooled scratch
// buffer, never in shared tree state.
func (t *Tree) ReadLeaf(id int64, buf []byte) (int, error) {
	page := t.pagePool.Get().([]byte)
	defer t.pagePool.Put(page)
	if err := t.readPage(id, page); err != nil {
		return 0, err
	}
	n := pageCount(page)
	copy(buf, page[pageHeader:pageHeader+n*t.cfg.RecordSize])
	return n, nil
}

// --- insert --------------------------------------------------------------

// Insert adds one record, splitting leaves at the median on overflow (§3.2,
// "Median-Based Splitting"): the upper half moves to a new page appended at
// the end of the leaf file, and the parent gains a separator. Both split
// halves are at least half full, preserving the storage bound of O(N/B)
// blocks.
func (t *Tree) Insert(rec []byte) error {
	if len(rec) != t.cfg.RecordSize {
		return fmt.Errorf("bptree: record size %d, want %d", len(rec), t.cfg.RecordSize)
	}
	if t.count == 0 {
		// First record: create leaf 0 and a root.
		page := make([]byte, t.cfg.pageSize())
		setPageCount(page, 1)
		setPageNext(page, -1)
		setPagePrev(page, -1)
		copy(page[pageHeader:], rec)
		if _, err := t.f.WriteAt(page, 0); err != nil {
			return err
		}
		t.nextPage = 1
		t.leafDir = []int64{0}
		t.leafCnt[0] = 1
		sep := make([]byte, t.cfg.KeyLen)
		copy(sep, rec[:t.cfg.KeyLen])
		t.leafSep[0] = sep
		t.root = &node{level: 1, leafIDs: []int64{0}}
		t.count = 1
		return nil
	}
	key := rec[:t.cfg.KeyLen]
	// Descend, remembering the path for separator insertion.
	var path []pathStep
	n := t.root
	for {
		idx := sort.Search(len(n.keys), func(i int) bool {
			return bytes.Compare(n.keys[i], key) >= 0
		})
		path = append(path, pathStep{n, idx})
		if n.level == 1 {
			break
		}
		n = n.children[idx]
	}
	leafStep := path[len(path)-1]
	leafID := leafStep.n.leafIDs[leafStep.idx]

	page, err := t.loadPage(leafID)
	if err != nil {
		return err
	}
	cnt := pageCount(page)
	pos := sort.Search(cnt, func(i int) bool {
		return bytes.Compare(t.record(page, i)[:t.cfg.KeyLen], key) >= 0
	})
	if cnt < t.cfg.LeafCap {
		// Shift and insert in place.
		start := pageHeader + pos*t.cfg.RecordSize
		end := pageHeader + cnt*t.cfg.RecordSize
		copy(page[start+t.cfg.RecordSize:end+t.cfg.RecordSize], page[start:end])
		copy(page[start:], rec)
		setPageCount(page, cnt+1)
		t.cacheDirty = true
		t.leafCnt[leafID] = cnt + 1
		t.count++
		return nil
	}

	// Median split: keep the lower half, move the upper half to a new page.
	mid := cnt / 2
	newID := t.nextPage
	t.nextPage++
	newPage := make([]byte, t.cfg.pageSize())
	moved := cnt - mid
	copy(newPage[pageHeader:], page[pageHeader+mid*t.cfg.RecordSize:pageHeader+cnt*t.cfg.RecordSize])
	setPageCount(newPage, moved)
	setPageNext(newPage, pageNext(page))
	setPagePrev(newPage, leafID)
	oldNext := pageNext(page)
	setPageCount(page, mid)
	setPageNext(page, newID)
	t.cacheDirty = true
	t.leafCnt[leafID] = mid
	t.leafCnt[newID] = moved

	// Persist the new page (append → sequential-ish but the parent fix-ups
	// below are the random I/Os the paper attributes to top-down inserts).
	if _, err := t.f.WriteAt(newPage, t.pageOffset(newID)); err != nil {
		return err
	}
	if oldNext >= 0 {
		if err := t.setPrevPtr(oldNext, newID); err != nil {
			return err
		}
	}

	// Insert newID into the leaf directory right after leafID.
	sepKey := make([]byte, t.cfg.KeyLen)
	copy(sepKey, newPage[pageHeader:pageHeader+t.cfg.KeyLen])
	t.leafSep[newID] = sepKey
	t.insertLeafDirAfter(leafID, newID)
	t.insertSeparator(path, sepKey, newID)

	// Retry the insert; it lands in one of the two half-full pages.
	return t.Insert(rec)
}

func (t *Tree) setPrevPtr(id, prev int64) error {
	page, err := t.loadPage(id)
	if err != nil {
		return err
	}
	setPagePrev(page, prev)
	t.cacheDirty = true
	return nil
}

func (t *Tree) insertLeafDirAfter(after, id int64) {
	for i, v := range t.leafDir {
		if v == after {
			t.leafDir = append(t.leafDir, 0)
			copy(t.leafDir[i+2:], t.leafDir[i+1:])
			t.leafDir[i+1] = id
			return
		}
	}
	t.leafDir = append(t.leafDir, id)
}

// pathStep records one node visited during a root-to-leaf descent and the
// child index taken.
type pathStep struct {
	n   *node
	idx int
}

// insertSeparator adds (sepKey -> newID) to the level-1 node on the path,
// splitting internal nodes at the median as needed.
func (t *Tree) insertSeparator(path []pathStep, sepKey []byte, newID int64) {
	leafStep := path[len(path)-1]
	n, idx := leafStep.n, leafStep.idx
	n.keys = insertKey(n.keys, idx, sepKey)
	n.leafIDs = insertID(n.leafIDs, idx+1, newID)

	// Propagate splits upward.
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		cur := path[lvl].n
		if cur.width() <= t.cfg.Fanout {
			return
		}
		mid := cur.width() / 2
		right := &node{level: cur.level}
		var upKey []byte
		if cur.level == 1 {
			upKey = cur.keys[mid-1]
			right.keys = append(right.keys, cur.keys[mid:]...)
			right.leafIDs = append(right.leafIDs, cur.leafIDs[mid:]...)
			cur.keys = cur.keys[:mid-1]
			cur.leafIDs = cur.leafIDs[:mid]
		} else {
			upKey = cur.keys[mid-1]
			right.keys = append(right.keys, cur.keys[mid:]...)
			right.children = append(right.children, cur.children[mid:]...)
			cur.keys = cur.keys[:mid-1]
			cur.children = cur.children[:mid]
		}
		if lvl == 0 {
			// New root.
			t.root = &node{
				level:    cur.level + 1,
				keys:     [][]byte{upKey},
				children: []*node{cur, right},
			}
			return
		}
		parent := path[lvl-1].n
		pidx := path[lvl-1].idx
		parent.keys = insertKey(parent.keys, pidx, upKey)
		parent.children = insertChild(parent.children, pidx+1, right)
	}
}

func insertKey(keys [][]byte, idx int, k []byte) [][]byte {
	keys = append(keys, nil)
	copy(keys[idx+1:], keys[idx:])
	keys[idx] = k
	return keys
}

func insertID(ids []int64, idx int, id int64) []int64 {
	ids = append(ids, 0)
	copy(ids[idx+1:], ids[idx:])
	ids[idx] = id
	return ids
}

func insertChild(ch []*node, idx int, n *node) []*node {
	ch = append(ch, nil)
	copy(ch[idx+1:], ch[idx:])
	ch[idx] = n
	return ch
}

// CheckInvariants validates the structural invariants; tests and the
// property suite call this after every mutation batch. It verifies:
// key order within and across leaves, leaf chain consistency, separator
// correctness, uniform leaf depth, and the record count.
func (t *Tree) CheckInvariants() error {
	if t.count == 0 {
		return nil
	}
	// Uniform depth + separator sanity.
	var walk func(n *node) error
	walk = func(n *node) error {
		if n.width() == 0 {
			return errors.New("bptree: empty internal node")
		}
		if len(n.keys) != n.width()-1 {
			return fmt.Errorf("bptree: node level %d has %d keys for width %d", n.level, len(n.keys), n.width())
		}
		for i := 1; i < len(n.keys); i++ {
			if bytes.Compare(n.keys[i-1], n.keys[i]) > 0 {
				return errors.New("bptree: separators out of order")
			}
		}
		if n.level > 1 {
			for _, c := range n.children {
				if c.level != n.level-1 {
					return errors.New("bptree: uneven levels")
				}
				if err := walk(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	// Chain + global order + count.
	var prev []byte
	var seen int64
	c, err := t.SeekFirst()
	if err != nil {
		return err
	}
	for c.Valid() {
		k := c.Key()
		if prev != nil && bytes.Compare(prev, k) > 0 {
			return errors.New("bptree: records out of order in chain")
		}
		prev = append(prev[:0], k...)
		seen++
		if err := c.Next(); err != nil {
			return err
		}
	}
	if seen != t.count {
		return fmt.Errorf("bptree: chain has %d records, count says %d", seen, t.count)
	}
	return nil
}
