package core

import (
	"context"
	"math"
	"sort"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
	"github.com/coconut-db/coconut/internal/summary"
)

// Neighbor is one k-NN answer: a record position and its Euclidean
// distance to the query. (During the internal scan phases Dist holds the
// SQUARED distance; the public entry takes the square roots once, when the
// final top-k is materialized.) The type is the shared shard.Neighbor, so
// every merge step — per-shard locals, the cross-shard reduce, and the
// cross-partition gather — ranks under the one (dist, pos) total order
// shard.KNNHeap implements.
type Neighbor = shard.Neighbor

// ExactSearchKNN returns the k exact nearest neighbors of q, using the same
// SIMS machinery as ExactSearch with the k-th-best distance as the pruning
// bound. radius controls the approximate seeding phase. Safe for concurrent
// use.
//
// The verification scan is sharded across Options.QueryWorkers: each shard
// runs its contiguous slice of the scan with a private heap seeded from the
// approximate phase, pruning only on its own (monotonically tightening)
// bound with STRICT comparisons, and the shard heaps are reduced in shard
// order. Every candidate that could reach the final top-k under the total
// (distance, position) order is verified by some shard no matter where the
// shard boundaries fall, so the returned neighbors are identical for any
// QueryWorkers; only the Visited* counters vary (weaker per-shard bounds
// verify a few extra candidates).
func (ix *TreeIndex) ExactSearchKNN(q series.Series, k, radius int) ([]Neighbor, Result, error) {
	return ix.ExactSearchKNNCtx(context.Background(), q, k, radius)
}

// ExactSearchKNNCtx is ExactSearchKNN observing ctx: cancellation is
// checked at leaf-visit granularity, a cancelled query returns ctx.Err()
// and never a partial neighbor set, and shards stuck in a blocking read
// are abandoned rather than waited for.
func (ix *TreeIndex) ExactSearchKNNCtx(ctx context.Context, q series.Series, k, radius int) ([]Neighbor, Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	var kb shard.BSF
	kb.Init(math.Inf(1))
	out, stats, err := ix.exactSearchKNN(ctx, q, k, radius, &kb)
	if err != nil {
		return nil, stats, err
	}
	// Materialize Euclidean distances: one sqrt per reported neighbor, the
	// only square roots in the whole k-NN pipeline.
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	if len(out) > 0 {
		stats.Pos = out[0].Pos
		stats.Dist = out[0].Dist
	}
	return out, stats, nil
}

// ExactSearchKNNShared is the partition-layer entry: the index answers
// with its OWN exact top-k (self-seeded — the retained set is the true
// top-k of the local multiset, independent of any seed), while the shared
// cross-partition bound kb is used for pruning only, with the same strict
// comparisons as the shared exact bound. Returned neighbors and stats are
// in SQUARED space.
func (ix *TreeIndex) ExactSearchKNNShared(q series.Series, k, radius int, kb *shard.BSF) ([]Neighbor, Result, error) {
	return ix.ExactSearchKNNSharedCtx(context.Background(), q, k, radius, kb)
}

// ExactSearchKNNSharedCtx is ExactSearchKNNShared observing ctx (see
// ExactSearchKNNCtx).
func (ix *TreeIndex) ExactSearchKNNSharedCtx(ctx context.Context, q series.Series, k, radius int, kb *shard.BSF) ([]Neighbor, Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.exactSearchKNN(ctx, q, k, radius, kb)
}

func (ix *TreeIndex) exactSearchKNN(ctx context.Context, q series.Series, k, radius int, kb *shard.BSF) ([]Neighbor, Result, error) {
	stats := Result{Pos: -1, Dist: math.Inf(1)}
	if k < 1 {
		k = 1
	}
	if ix.count == 0 {
		return nil, stats, ErrEmptyIndex
	}
	h := shard.NewKNNHeap(k)

	// Seed: scan the target neighborhood, collecting up to k candidates.
	if err := ix.knnSeed(ctx, q, radius, h, &stats); err != nil {
		return nil, stats, err
	}
	kb.Lower(h.Bound())
	if err := ix.ensureSIMS(); err != nil {
		return nil, stats, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return nil, stats, err
	}
	mindists := ix.opt.S.MinDistsToKeys(qPAA, ix.keys, ix.opt.QueryWorkers)

	seed := append([]Neighbor(nil), h.Items()...)
	var perShard [][]Neighbor
	if ix.opt.Materialized {
		perShard, err = ix.knnScanLeaves(ctx, q, k, seed, mindists, &stats, kb)
	} else {
		perShard, err = ix.knnScanRawFile(ctx, q, k, seed, mindists, &stats, kb)
	}
	if err != nil {
		return nil, stats, err
	}
	// Reduce in shard order: every shard retained the top-k of (its range ∪
	// seed) under the total order, so folding the shard heaps recovers the
	// global top-k exactly.
	final := shard.NewKNNHeap(k)
	for _, n := range seed {
		final.Offer(n)
	}
	for _, items := range perShard {
		for _, n := range items {
			final.Offer(n)
		}
	}
	return final.Sorted(), stats, nil
}

// knnScanRawFile is the non-materialized verification scan: candidates that
// survive the seed bound are remapped to raw-file position order and the
// position range is partitioned into contiguous shards, each reading its
// slice of the raw file strictly forward.
func (ix *TreeIndex) knnScanRawFile(ctx context.Context, q series.Series, k int, seed []Neighbor, mindists []float64, stats *Result, kb *shard.BSF) ([][]Neighbor, error) {
	type cand struct {
		pos int64
		lb  float64
	}
	// seed is a copy of the seeding heap's backing array, so seed[0] is its
	// root: the k-th best squared distance — the collection bound.
	seedBound := math.Inf(1)
	if len(seed) >= k {
		seedBound = seed[0].Dist
	}
	cands := make([]cand, 0, 256)
	for i, lb := range mindists {
		// Inclusive: a candidate whose lower bound exactly ties the seed
		// bound can still outrank the seed root under the (dist, pos) total
		// order, so it must be verified. The shared bound prunes strictly
		// for the same reason.
		if lb <= seedBound && !kb.Prunes(lb) {
			cands = append(cands, cand{ix.positions[i], lb})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].pos < cands[b].pos })

	workers := shard.Resolve(ix.opt.QueryWorkers, len(cands))
	perShard := make([][]Neighbor, workers)
	visited := make([]int64, workers)
	seriesLen := ix.opt.S.Params().SeriesLen
	err := shard.ScanCtx(ctx, workers, len(cands), func(si int, rr shard.Range, cancelled func() bool) error {
		lh := shard.NewKNNHeap(k)
		for _, n := range seed {
			lh.Offer(n)
		}
		scratch := make(series.Series, seriesLen)
		for i := rr.Lo; i < rr.Hi; i++ {
			if cancelled() {
				return nil
			}
			c := cands[i]
			if c.lb > lh.Bound() || kb.Prunes(c.lb) {
				continue // strict: a tie with either bound is still verified
			}
			if err := readRawAt(ix.rawFile, ix.rawSums, seriesLen, c.pos, scratch); err != nil {
				return err
			}
			visited[si]++
			// With the heap in squared space the abandon threshold is the
			// heap bound itself — the ulp-widening dance the sqrt-space heap
			// needed is gone. SquaredEDEarlyAbandon abandons only on a
			// STRICT excess, so a candidate whose squared sum exactly ties
			// the bound completes and is offered (the (dist, pos) total
			// order breaks the tie), and everything abandoned strictly
			// loses — the evaluated pool's top-k stays invariant across
			// shard boundaries.
			sq, ok := series.SquaredEDEarlyAbandon(q, scratch, lh.Bound())
			if !ok {
				continue
			}
			if lh.Offer(Neighbor{Pos: c.pos, Dist: sq}) {
				kb.Lower(lh.Bound())
			}
		}
		perShard[si] = lh.Items()
		return nil
	})
	// On a ctx error the abandoned shards may still be writing perShard and
	// visited: neither is read, the caller sees ctx.Err() and discards.
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	for _, v := range visited {
		stats.VisitedRecords += v
	}
	return perShard, err
}

// knnScanLeaves is the materialized verification scan: the leaf directory
// is partitioned into contiguous shards that skip leaves with no candidate
// within the shard's bound and scan the rest in place.
func (ix *TreeIndex) knnScanLeaves(ctx context.Context, q series.Series, k int, seed []Neighbor, mindists []float64, stats *Result, kb *shard.BSF) ([][]Neighbor, error) {
	dir, bases := ix.leafBases()
	workers := shard.Resolve(ix.opt.QueryWorkers, len(dir))
	perShard := make([][]Neighbor, workers)
	visited := make([][2]int64, workers) // records, leaves
	err := shard.ScanCtx(ctx, workers, len(dir), func(si int, rr shard.Range, cancelled func() bool) error {
		lh := shard.NewKNNHeap(k)
		for _, n := range seed {
			lh.Offer(n)
		}
		scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
		buf := make([]byte, ix.opt.LeafCap*ix.opt.recordSize())
		for li := rr.Lo; li < rr.Hi; li++ {
			if cancelled() {
				return nil
			}
			id := dir[li]
			cnt := ix.bt.LeafRecordCount(id)
			lb := bases[li]
			bound := lh.Bound()
			any := false
			for i := lb; i < lb+cnt && i < len(mindists); i++ {
				if mindists[i] <= bound && !kb.Prunes(mindists[i]) {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			n, err := ix.bt.ReadLeaf(id, buf)
			if err != nil {
				return err
			}
			visited[si][1]++
			for i := 0; i < n; i++ {
				if lb+i >= len(mindists) || mindists[lb+i] > lh.Bound() || kb.Prunes(mindists[lb+i]) {
					continue
				}
				rec := buf[i*ix.opt.recordSize() : (i+1)*ix.opt.recordSize()]
				pos, sq, err := ix.recordSquaredDistance(q, rec, scratch)
				if err != nil {
					return err
				}
				visited[si][0]++
				if lh.Offer(Neighbor{Pos: pos, Dist: sq}) {
					kb.Lower(lh.Bound())
				}
			}
		}
		perShard[si] = lh.Items()
		return nil
	})
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	for _, v := range visited {
		stats.VisitedRecords += v[0]
		stats.VisitedLeaves += v[1]
	}
	return perShard, err
}

// knnSeed scans the query's target leaf (±radius) into the heap,
// checking ctx once per leaf.
func (ix *TreeIndex) knnSeed(ctx context.Context, q series.Series, radius int, h *shard.KNNHeap, stats *Result) error {
	key, err := ix.opt.S.KeyOf(q)
	if err != nil {
		return err
	}
	cur, err := ix.bt.Seek(key[:])
	if err != nil {
		return err
	}
	dir := ix.bt.LeafDir()
	var center int
	if cur.Valid() {
		center = ix.leafIndexOf(cur.LeafID())
	} else {
		center = len(dir) - 1
	}
	lo, hi := center-radius, center+radius
	if lo < 0 {
		lo = 0
	}
	if hi >= len(dir) {
		hi = len(dir) - 1
	}
	p := ix.opt.S.Params()
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return err
	}
	scratch := make(series.Series, p.SeriesLen)
	saxScratch := make(summary.SAX, p.Segments)
	buf := make([]byte, ix.opt.LeafCap*ix.opt.recordSize())
	for li := lo; li <= hi; li++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := ix.bt.ReadLeaf(dir[li], buf)
		if err != nil {
			return err
		}
		stats.VisitedLeaves++
		for i := 0; i < n; i++ {
			rec := buf[i*ix.opt.recordSize() : (i+1)*ix.opt.recordSize()]
			if !ix.opt.Materialized {
				k, _, _ := decodeRecord(rec, false)
				sax := summary.DeinterleaveInto(k, p.CardBits, saxScratch)
				if ix.opt.S.MinDistSqPAAToSAX(qPAA, sax) > h.Bound() {
					continue
				}
			}
			pos, sq, err := ix.recordSquaredDistance(q, rec, scratch)
			if err != nil {
				return err
			}
			stats.VisitedRecords++
			h.Offer(Neighbor{Pos: pos, Dist: sq})
		}
	}
	return nil
}
