package core

import (
	"container/heap"
	"math"
	"sort"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/summary"
)

// Neighbor is one k-NN answer.
type Neighbor struct {
	// Pos is the series' ordinal in the raw file.
	Pos int64
	// Dist is its Euclidean distance to the query.
	Dist float64
}

// knnHeap is a max-heap over distance, holding the k best candidates so
// far; the root is the current pruning bound. Positions are deduplicated:
// the seeding phase and the main scan may both encounter the same record.
type knnHeap struct {
	items []Neighbor
	k     int
	seen  map[int64]bool
}

func (h *knnHeap) Len() int           { return len(h.items) }
func (h *knnHeap) Less(i, j int) bool { return h.items[i].Dist > h.items[j].Dist }
func (h *knnHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *knnHeap) Push(x any)         { h.items = append(h.items, x.(Neighbor)) }
func (h *knnHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// bound returns the pruning distance: the k-th best so far, or +Inf while
// fewer than k candidates exist.
func (h *knnHeap) bound() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// offer considers a candidate, ignoring positions already offered.
func (h *knnHeap) offer(n Neighbor) {
	if h.seen == nil {
		h.seen = make(map[int64]bool)
	}
	if h.seen[n.Pos] {
		return
	}
	h.seen[n.Pos] = true
	if len(h.items) < h.k {
		heap.Push(h, n)
		return
	}
	if n.Dist < h.items[0].Dist {
		h.items[0] = n
		heap.Fix(h, 0)
	}
}

// sorted drains the heap into ascending-distance order.
func (h *knnHeap) sorted() []Neighbor {
	out := append([]Neighbor(nil), h.items...)
	sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out
}

// ExactSearchKNN returns the k exact nearest neighbors of q, using the same
// SIMS machinery as ExactSearch with the k-th-best distance as the pruning
// bound. radius controls the approximate seeding phase. Safe for concurrent
// use; the verification scan is kept serial (the shared heap bound tightens
// as the scan advances, which sharding would weaken), while the lower-bound
// phase fans out across QueryWorkers.
func (ix *TreeIndex) ExactSearchKNN(q series.Series, k, radius int) ([]Neighbor, Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.exactSearchKNN(q, k, radius)
}

func (ix *TreeIndex) exactSearchKNN(q series.Series, k, radius int) ([]Neighbor, Result, error) {
	stats := Result{Pos: -1, Dist: math.Inf(1)}
	if k < 1 {
		k = 1
	}
	if ix.count == 0 {
		return nil, stats, errEmptyIndex
	}
	h := &knnHeap{k: k}

	// Seed: scan the target neighborhood, collecting up to k candidates.
	if err := ix.knnSeed(q, radius, h, &stats); err != nil {
		return nil, stats, err
	}
	if err := ix.ensureSIMS(); err != nil {
		return nil, stats, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return nil, stats, err
	}
	mindists := ix.opt.S.MinDistsToKeys(qPAA, ix.keys, ix.opt.QueryWorkers)

	scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
	if ix.opt.Materialized {
		buf := make([]byte, ix.opt.LeafCap*ix.opt.recordSize())
		base := 0
		for _, id := range ix.bt.LeafDir() {
			cnt := ix.bt.LeafRecordCount(id)
			bound := h.bound()
			any := false
			for i := base; i < base+cnt && i < len(mindists); i++ {
				if mindists[i] < bound {
					any = true
					break
				}
			}
			if !any {
				base += cnt
				continue
			}
			n, err := ix.bt.ReadLeaf(id, buf)
			if err != nil {
				return nil, stats, err
			}
			stats.VisitedLeaves++
			for i := 0; i < n; i++ {
				if base+i >= len(mindists) || mindists[base+i] >= h.bound() {
					continue
				}
				rec := buf[i*ix.opt.recordSize() : (i+1)*ix.opt.recordSize()]
				pos, d, err := ix.recordDistance(q, rec, scratch)
				if err != nil {
					return nil, stats, err
				}
				stats.VisitedRecords++
				h.offer(Neighbor{Pos: pos, Dist: d})
			}
			base += cnt
		}
	} else {
		type cand struct {
			pos int64
			lb  float64
		}
		bound := h.bound()
		cands := make([]cand, 0, 256)
		for i, lb := range mindists {
			if lb < bound {
				cands = append(cands, cand{ix.positions[i], lb})
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].pos < cands[b].pos })
		for _, c := range cands {
			if c.lb >= h.bound() {
				continue
			}
			if err := readRawAt(ix.rawFile, ix.opt.S.Params().SeriesLen, c.pos, scratch); err != nil {
				return nil, stats, err
			}
			stats.VisitedRecords++
			limit := h.bound()
			sq, ok := series.SquaredEDEarlyAbandon(q, scratch, limit*limit)
			if !ok {
				continue
			}
			h.offer(Neighbor{Pos: c.pos, Dist: math.Sqrt(sq)})
		}
	}
	out := h.sorted()
	if len(out) > 0 {
		stats.Pos = out[0].Pos
		stats.Dist = out[0].Dist
	}
	return out, stats, nil
}

// knnSeed scans the query's target leaf (±radius) into the heap.
func (ix *TreeIndex) knnSeed(q series.Series, radius int, h *knnHeap, stats *Result) error {
	key, err := ix.opt.S.KeyOf(q)
	if err != nil {
		return err
	}
	cur, err := ix.bt.Seek(key[:])
	if err != nil {
		return err
	}
	dir := ix.bt.LeafDir()
	var center int
	if cur.Valid() {
		center = ix.leafIndexOf(cur.LeafID())
	} else {
		center = len(dir) - 1
	}
	lo, hi := center-radius, center+radius
	if lo < 0 {
		lo = 0
	}
	if hi >= len(dir) {
		hi = len(dir) - 1
	}
	p := ix.opt.S.Params()
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return err
	}
	scratch := make(series.Series, p.SeriesLen)
	buf := make([]byte, ix.opt.LeafCap*ix.opt.recordSize())
	for li := lo; li <= hi; li++ {
		n, err := ix.bt.ReadLeaf(dir[li], buf)
		if err != nil {
			return err
		}
		stats.VisitedLeaves++
		for i := 0; i < n; i++ {
			rec := buf[i*ix.opt.recordSize() : (i+1)*ix.opt.recordSize()]
			if !ix.opt.Materialized {
				k, _, _ := decodeRecord(rec, false)
				sax := summary.Deinterleave(k, p.Segments, p.CardBits)
				if ix.opt.S.MinDistPAAToSAX(qPAA, sax) >= h.bound() {
					continue
				}
			}
			pos, d, err := ix.recordDistance(q, rec, scratch)
			if err != nil {
				return err
			}
			stats.VisitedRecords++
			h.offer(Neighbor{Pos: pos, Dist: d})
		}
	}
	return nil
}
