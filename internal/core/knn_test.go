package core

import (
	"math"
	"sort"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
)

func bruteForceKNN(q series.Series, data []series.Series, k int) []Neighbor {
	out := make([]Neighbor, 0, len(data))
	for i, d := range data {
		dist, _ := series.ED(q, d)
		out = append(out, Neighbor{Pos: int64(i), Dist: dist})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	for _, mat := range []bool{false, true} {
		fs, data := fixtureFS(t)
		ix, err := BuildTree(baseOptions(t, fs, mat))
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		qs := dataset.Queries(dataset.NewRandomWalk(), 8, tLen, 21)
		for qi, q := range qs {
			for _, k := range []int{1, 5, 20} {
				want := bruteForceKNN(q, data, k)
				got, _, err := ix.ExactSearchKNN(q, k, 1)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != k {
					t.Fatalf("mat=%v query %d k=%d: got %d neighbors", mat, qi, k, len(got))
				}
				for i := range got {
					if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("mat=%v query %d k=%d neighbor %d: dist %v != %v",
							mat, qi, k, i, got[i].Dist, want[i].Dist)
					}
				}
			}
		}
	}
}

func TestKNNOrderedAscending(t *testing.T) {
	fs, _ := fixtureFS(t)
	ix, err := BuildTree(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 23)[0]
	got, stats, err := ix.ExactSearchKNN(q, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Dist > got[i].Dist {
			t.Fatal("neighbors not sorted by distance")
		}
	}
	if stats.Pos != got[0].Pos || stats.Dist != got[0].Dist {
		t.Fatal("stats should reflect the best neighbor")
	}
	if stats.VisitedRecords >= tCount {
		t.Fatalf("kNN visited everything (%d) — no pruning", stats.VisitedRecords)
	}
}

func TestKNNKLargerThanCollection(t *testing.T) {
	fs, _ := fixtureFS(t)
	ix, err := BuildTree(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 25)[0]
	got, _, err := ix.ExactSearchKNN(q, tCount+100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != tCount {
		t.Fatalf("k > N should return all %d series, got %d", tCount, len(got))
	}
}

func TestKNNZeroAndNegativeK(t *testing.T) {
	fs, _ := fixtureFS(t)
	ix, err := BuildTree(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 27)[0]
	got, _, err := ix.ExactSearchKNN(q, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("k<=0 should clamp to 1, got %d", len(got))
	}
}

func TestKNNAfterInsert(t *testing.T) {
	fs, data := fixtureFS(t)
	ix, err := BuildTree(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	batch := dataset.Generate(dataset.NewSeismic(), 30, tLen, 555)
	if err := ix.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	all := append(append([]series.Series{}, data...), batch...)
	q := batch[11]
	want := bruteForceKNN(q, all, 5)
	got, _, err := ix.ExactSearchKNN(q, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("post-insert kNN neighbor %d: %v != %v", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestOpenTreeRoundTrip(t *testing.T) {
	for _, mat := range []bool{false, true} {
		fs, data := fixtureFS(t)
		opt := baseOptions(t, fs, mat)
		ix, err := BuildTree(opt)
		if err != nil {
			t.Fatal(err)
		}
		count := ix.Count()
		leaves := ix.NumLeaves()
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}

		re, err := OpenTree(opt)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if re.Count() != count || re.NumLeaves() != leaves {
			t.Fatalf("reopened shape differs: %d/%d vs %d/%d",
				re.Count(), re.NumLeaves(), count, leaves)
		}
		// Queries work identically after reopen.
		q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 29)[0]
		want := bruteForce1NN(q, data)
		res, err := re.ExactSearch(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Dist-want) > 1e-9 {
			t.Fatalf("reopened exact search %v != %v", res.Dist, want)
		}
		// Inserts keep working after reopen.
		batch := dataset.Generate(dataset.NewAstronomy(), 10, tLen, 31)
		if err := re.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		res, err = re.ExactSearch(batch[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist > 1e-9 {
			t.Fatalf("insert after reopen not found: %v", res.Dist)
		}
	}
}

func TestOpenTreeMissing(t *testing.T) {
	fs, _ := fixtureFS(t)
	opt := baseOptions(t, fs, false)
	opt.Name = "never-built"
	if _, err := OpenTree(opt); err == nil {
		t.Fatal("expected error opening missing index")
	}
}

// TestKNNDeterministicAcrossQueryWorkers: the sharded verification scan
// must return byte-identical neighbor lists for any QueryWorkers, for both
// the materialized (leaf-scan) and non-materialized (raw-file) paths —
// per-shard heaps under the total (distance, position) order reduced in
// shard order are the determinism contract.
func TestKNNDeterministicAcrossQueryWorkers(t *testing.T) {
	for _, mat := range []bool{false, true} {
		fs, _ := fixtureFS(t)
		opt := baseOptions(t, fs, mat)
		opt.QueryWorkers = 1
		ix, err := BuildTree(opt)
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		qs := dataset.Queries(dataset.NewRandomWalk(), 6, tLen, 33)
		for qi, q := range qs {
			for _, k := range []int{1, 7, 25} {
				ix.opt.QueryWorkers = 1
				want, _, err := ix.ExactSearchKNN(q, k, 1)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 3, 8, 64} {
					ix.opt.QueryWorkers = workers
					got, _, err := ix.ExactSearchKNN(q, k, 1)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("mat=%v query %d k=%d workers=%d: %d neighbors vs %d",
							mat, qi, k, workers, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("mat=%v query %d k=%d workers=%d neighbor %d: %+v != %+v",
								mat, qi, k, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}
