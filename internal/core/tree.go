package core

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"github.com/coconut-db/coconut/internal/bptree"
	"github.com/coconut-db/coconut/internal/extsort"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// TreeIndex is Coconut-Tree (Algorithm 3): a balanced B+-tree bulk-loaded
// bottom-up over sorted invSAX keys. Leaves are contiguous, chained, and
// packed to the fill factor; approximate search lands on the leaf where the
// query's key would live, and exact search is CoconutTreeSIMS (Algorithm 5).
//
// A TreeIndex handle is safe for concurrent use: any number of queries
// (ApproxSearch, ExactSearch, ExactSearchKNN) may run at once on one
// handle, and InsertBatch/Close serialize against them through a
// handle-level RWMutex. Per-query scratch buffers are allocated per call,
// and the lazily rebuilt SIMS summary array and leaf-directory index are
// guarded by their own mutex.
type TreeIndex struct {
	opt     Options
	bt      *bptree.Tree
	rawFile storage.File
	count   int64
	// qmu is the handle lock: queries hold it shared, mutations
	// (InsertBatch, DropCaches, Close) exclusively.
	qmu sync.RWMutex
	// lazyMu guards the lazily (re)built state below: the SIMS summary
	// array refresh after inserts/Open, and the leaf-id -> chain-position
	// index. Queries only ever read that state after passing through a
	// lazyMu critical section, so concurrent readers are safe.
	lazyMu sync.Mutex
	// keys/positions hold the in-memory sorted summary array aligned with
	// the tree's leaf order (the paper: summaries are orders of magnitude
	// smaller than the data and stay in memory).
	keys      []summary.Key
	positions []int64
	// simsDirty marks the summary array stale after inserts.
	simsDirty bool
	// metaDirty marks the persisted meta (B+-tree directory + manifest)
	// stale after inserts; Sync/Close rewrite both.
	metaDirty bool
	// leafIdx maps a leaf page id to its chain position (lazily rebuilt).
	leafIdx map[int64]int
}

// teeSource forwards a sorted record stream into the bulk loader while
// capturing the (key, position) pairs for the in-memory summary array.
type teeSource struct {
	rr        *extsort.RecordReader
	keys      *[]summary.Key
	positions *[]int64
}

func (t *teeSource) Next() ([]byte, error) {
	rec, err := t.rr.Next()
	if err != nil {
		return nil, err
	}
	key, pos, _ := decodeRecord(rec, false)
	*t.keys = append(*t.keys, key)
	*t.positions = append(*t.positions, pos)
	return rec, nil
}

// BuildTree runs the full Coconut-Tree pipeline: summarize -> external sort
// -> UB-tree bulk load.
func BuildTree(opt Options) (*TreeIndex, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}

	sortedName := opt.Name + ".sorted"
	src, err := SummaryRecordReader(opt.S, raw, opt.Materialized, opt.Workers)
	if err != nil {
		raw.Close()
		return nil, err
	}
	_, err = extsort.Sort(extsort.Config{
		FS:         opt.FS,
		RecordSize: opt.recordSize(),
		Compare:    extsort.CompareKeyPrefix(summary.KeySize),
		MemBudget:  opt.MemBudgetBytes,
		TempPrefix: opt.Name + ".sort",
		Workers:    opt.Workers,
	}, src, sortedName)
	src.Close()
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("core: sorting summarizations: %w", err)
	}

	rr, err := extsort.OpenRecords(opt.FS, sortedName, opt.recordSize(), 0)
	if err != nil {
		raw.Close()
		return nil, err
	}
	ix := &TreeIndex{opt: opt, rawFile: raw}
	tee := &teeSource{rr: rr, keys: &ix.keys, positions: &ix.positions}
	bt, err := bptree.BulkLoad(bptree.Config{
		FS:         opt.FS,
		Name:       opt.Name + ".bt",
		RecordSize: opt.recordSize(),
		KeyLen:     summary.KeySize,
		LeafCap:    opt.LeafCap,
		FillFactor: opt.FillFactor,
		Fanout:     opt.Fanout,
	}, tee)
	rr.Close()
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("core: bulk loading: %w", err)
	}
	_ = opt.FS.Remove(sortedName)
	if err := bt.Save(); err != nil {
		bt.Close()
		raw.Close()
		return nil, err
	}
	ix.bt = bt
	ix.count = bt.Count()
	// The manifest commit is the durability point: from here on the index
	// can be reopened with OpenTree without touching the raw dataset.
	if err := ix.writeManifest(); err != nil {
		bt.Close()
		raw.Close()
		return nil, err
	}
	return ix, nil
}

// OpenTree reopens a previously built Coconut-Tree from its manifest and
// persisted B+-tree. The options must name the same FS, Name, RawName,
// summarizer configuration, and materialization as the build — mismatches
// fail loudly with manifest.ErrConfigMismatch, and a manifest that
// disagrees with the B+-tree meta (stale or mixed builds) fails with
// manifest.ErrCorruptManifest. The tree geometry is restored from the
// persisted metadata and the in-memory summary array is rebuilt lazily on
// the first exact query — from the index's own leaves, never from the raw
// dataset.
func OpenTree(opt Options) (*TreeIndex, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	m, err := LoadManifest(opt.FS, opt.Name)
	if err != nil {
		return nil, err
	}
	if err := checkOpenConfig(&opt, m, manifest.VariantTree); err != nil {
		return nil, err
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	bt, err := bptree.Open(bptree.Config{FS: opt.FS, Name: opt.Name + ".bt"})
	if err != nil {
		raw.Close()
		return nil, err
	}
	stale, err := checkTreeGeometry(opt, m, bt.Geometry())
	if err != nil {
		bt.Close()
		raw.Close()
		return nil, err
	}
	ix := &TreeIndex{opt: opt, bt: bt, rawFile: raw, count: bt.Count(), simsDirty: true}
	if stale {
		// Crash window between meta save and manifest commit: the meta is
		// newer. Heal by recommitting the manifest from the live tree.
		if err := ix.writeManifest(); err != nil {
			bt.Close()
			raw.Close()
			return nil, err
		}
	}
	return ix, nil
}

// Count returns the number of indexed series.
func (ix *TreeIndex) Count() int64 {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.count
}

// NumLeaves returns the number of leaf pages.
func (ix *TreeIndex) NumLeaves() int {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.bt.NumLeaves()
}

// AvgLeafFill returns mean leaf occupancy (the paper's ~97%).
func (ix *TreeIndex) AvgLeafFill() float64 {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.bt.AvgLeafFill()
}

// Height returns the B+-tree height (leaves included).
func (ix *TreeIndex) Height() int {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.bt.Height()
}

// SizeBytes returns the on-device index footprint.
func (ix *TreeIndex) SizeBytes() int64 {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.bt.SizeBytes() + ix.bt.MetaSizeBytes()
}

// Sync persists any metadata made stale by inserts — the B+-tree leaf
// directory and the index manifest — so a subsequent OpenTree observes the
// inserted records. A freshly built or unmodified handle syncs for free.
func (ix *TreeIndex) Sync() error {
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	return ix.syncLocked()
}

func (ix *TreeIndex) syncLocked() error {
	if !ix.metaDirty {
		return nil
	}
	// Inserted raw bytes first (leaf records reference their positions),
	// then the leaf file + meta (bt.Save syncs both), then the manifest.
	if err := ix.rawFile.Sync(); err != nil {
		return err
	}
	if err := ix.bt.Save(); err != nil {
		return err
	}
	if err := ix.writeManifest(); err != nil {
		return err
	}
	ix.metaDirty = false
	return nil
}

// Close persists pending metadata (see Sync) and releases the file
// handles. It must not race in-flight queries; the handle lock makes it
// wait for them.
func (ix *TreeIndex) Close() error {
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	syncErr := ix.syncLocked()
	err1 := ix.bt.Close()
	err2 := ix.rawFile.Close()
	if syncErr != nil {
		return syncErr
	}
	if err1 != nil {
		return err1
	}
	return err2
}

// DropCaches flushes the tree's page cache (cold-start experiments).
func (ix *TreeIndex) DropCaches() error {
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	return ix.bt.DropCache()
}

func (ix *TreeIndex) leafIndexOf(id int64) int {
	ix.lazyMu.Lock()
	defer ix.lazyMu.Unlock()
	if ix.leafIdx == nil || len(ix.leafIdx) != ix.bt.NumLeaves() {
		ix.leafIdx = make(map[int64]int, ix.bt.NumLeaves())
		for i, lid := range ix.bt.LeafDir() {
			ix.leafIdx[lid] = i
		}
	}
	return ix.leafIdx[id]
}

// recordSquaredDistance computes the true SQUARED distance from q to a
// leaf record. Internal search state stays in squared space end to end —
// lower bounds and best-so-far distances are compared without ever taking
// a square root — and only the public entry points materialize a Euclidean
// distance via finishResult.
func (ix *TreeIndex) recordSquaredDistance(q series.Series, rec []byte, scratch series.Series) (int64, float64, error) {
	_, pos, raw := decodeRecord(rec, ix.opt.Materialized)
	if raw != nil {
		series.DecodeInto(raw, scratch)
	} else if err := readRawAt(ix.rawFile, ix.opt.S.Params().SeriesLen, pos, scratch); err != nil {
		return 0, 0, err
	}
	sq, err := series.SquaredED(q, scratch)
	if err != nil {
		return 0, 0, err
	}
	return pos, sq, nil
}

// finishResult converts an internal squared-space Result into the public
// Euclidean form. sqrt is monotone on non-negative reals, so the winning
// (Pos, squared distance) pair picked by squared comparisons is the same
// record the sqrt-space scan would pick, and sqrt of its exact squared sum
// is byte-identical to the distance the sqrt-space scan would report.
func finishResult(res Result) Result {
	res.Dist = math.Sqrt(res.Dist)
	return res
}

// ApproxSearch implements Algorithm 4: locate the leaf where the query's
// invSAX key would reside and examine all leaves within `radius` of it
// (radius 0 = just the target leaf). Neighboring leaves are physically
// adjacent thanks to contiguous bulk loading, so the extra reads are
// sequential. Safe for concurrent use.
func (ix *TreeIndex) ApproxSearch(q series.Series, radius int) (Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	res, err := ix.approxSearch(q, radius)
	return finishResult(res), err
}

// approxSearch is the internal form of ApproxSearch; res.Dist holds the
// SQUARED best distance.
func (ix *TreeIndex) approxSearch(q series.Series, radius int) (Result, error) {
	res := Result{Pos: -1, Dist: math.Inf(1)}
	if ix.count == 0 {
		return res, errEmptyIndex
	}
	key, err := ix.opt.S.KeyOf(q)
	if err != nil {
		return res, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	cur, err := ix.bt.Seek(key[:])
	if err != nil {
		return res, err
	}
	dir := ix.bt.LeafDir()
	var center int
	if cur.Valid() {
		center = ix.leafIndexOf(cur.LeafID())
	} else {
		center = len(dir) - 1 // key past the end: examine the last leaf
	}
	lo, hi := center-radius, center+radius
	if lo < 0 {
		lo = 0
	}
	if hi >= len(dir) {
		hi = len(dir) - 1
	}
	p := ix.opt.S.Params()
	scratch := make(series.Series, p.SeriesLen)
	buf := make([]byte, ix.opt.LeafCap*ix.opt.recordSize())

	if ix.opt.Materialized {
		// Raw series live in the leaves: scan them directly.
		for li := lo; li <= hi; li++ {
			n, err := ix.bt.ReadLeaf(dir[li], buf)
			if err != nil {
				return res, err
			}
			res.VisitedLeaves++
			for i := 0; i < n; i++ {
				rec := buf[i*ix.opt.recordSize() : (i+1)*ix.opt.recordSize()]
				pos, sq, err := ix.recordSquaredDistance(q, rec, scratch)
				if err != nil {
					return res, err
				}
				res.VisitedRecords++
				if sq < res.Dist {
					res.Dist, res.Pos = sq, pos
				}
			}
		}
		return res, nil
	}

	// Non-materialized: every raw fetch is a random I/O into the dataset
	// file. Per the paper (§4.3), examine the records within a bounded
	// window of the query's sort position ("usually a disk page" per
	// radius step), fetching them in lower-bound order with early stop.
	type cand struct {
		pos int64
		lb  float64
		seq int
	}
	var cands []cand
	insIdx := 0
	seq := 0
	saxScratch := make(summary.SAX, p.Segments)
	for li := lo; li <= hi; li++ {
		n, err := ix.bt.ReadLeaf(dir[li], buf)
		if err != nil {
			return res, err
		}
		res.VisitedLeaves++
		for i := 0; i < n; i++ {
			rec := buf[i*ix.opt.recordSize() : (i+1)*ix.opt.recordSize()]
			k, pos, _ := decodeRecord(rec, false)
			if k.Less(key) {
				insIdx = seq + 1
			}
			sax := summary.DeinterleaveInto(k, p.CardBits, saxScratch)
			cands = append(cands, cand{pos, ix.opt.S.MinDistSqPAAToSAX(qPAA, sax), seq})
			seq++
		}
	}
	window := ix.opt.ApproxWindow * (radius + 1)
	kept := cands[:0]
	for _, c := range cands {
		if c.seq-insIdx < window/2 && insIdx-c.seq < window/2 {
			kept = append(kept, c)
		}
	}
	sort.Slice(kept, func(a, b int) bool { return kept[a].lb < kept[b].lb })
	for _, c := range kept {
		if c.lb >= res.Dist {
			break
		}
		if err := readRawAt(ix.rawFile, p.SeriesLen, c.pos, scratch); err != nil {
			return res, err
		}
		res.VisitedRecords++
		sq, ok := series.SquaredEDEarlyAbandon(q, scratch, res.Dist)
		if !ok {
			continue
		}
		if sq < res.Dist {
			res.Dist, res.Pos = sq, c.pos
		}
	}
	return res, nil
}

// ensureSIMS rebuilds the in-memory sorted summary array after updates by
// one sequential pass over the chained leaves. The rebuild is serialized on
// lazyMu; concurrent queries that lose the race wait and then read the
// fresh arrays (the mutex's happens-before makes that safe).
func (ix *TreeIndex) ensureSIMS() error {
	ix.lazyMu.Lock()
	defer ix.lazyMu.Unlock()
	if !ix.simsDirty {
		return nil
	}
	ix.keys = ix.keys[:0]
	ix.positions = ix.positions[:0]
	err := ix.bt.ScanAll(func(rec []byte) error {
		key, pos, _ := decodeRecord(rec, false)
		ix.keys = append(ix.keys, key)
		ix.positions = append(ix.positions, pos)
		return nil
	})
	if err != nil {
		return err
	}
	ix.simsDirty = false
	return nil
}

// ExactSearch runs CoconutTreeSIMS (Algorithm 5): approximate search seeds
// the best-so-far, lower bounds are computed for all series in parallel
// from the in-memory sorted summaries, and unpruned candidates are fetched
// with a skip-sequential scan sharded across Options.QueryWorkers — over
// the tree's own leaves when materialized, over the raw file in position
// order otherwise. Safe for concurrent use; (Pos, Dist) is identical for
// any worker count.
func (ix *TreeIndex) ExactSearch(q series.Series, radius int) (Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	res, err := ix.exactSearch(q, radius)
	return finishResult(res), err
}

// exactSearch runs the whole SIMS pipeline in squared space: the seed, the
// lower bounds, the shared best-so-far, and the verification scans all
// carry squared distances, so the per-key sqrt of the old kernel and the
// per-candidate sqrt of the old scan are gone entirely.
func (ix *TreeIndex) exactSearch(q series.Series, radius int) (Result, error) {
	res, err := ix.approxSearch(q, radius)
	if err != nil {
		return res, err
	}
	if err := ix.ensureSIMS(); err != nil {
		return res, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	mindists := ix.opt.S.MinDistsToKeys(qPAA, ix.keys, ix.opt.QueryWorkers)

	if ix.opt.Materialized {
		return ix.simsOverLeaves(q, mindists, res)
	}
	return ix.simsOverRawFile(q, mindists, res)
}

// applyScan folds a ScanReduce result into res.
func applyScan(res Result, pos int64, dist float64, vr, vl int64) Result {
	res.Pos, res.Dist = pos, dist
	res.VisitedRecords += vr
	res.VisitedLeaves += vl
	return res
}

// simsOverLeaves is the materialized scan: walk the leaf directory in
// order, skipping leaves with no unpruned candidate. The directory is
// partitioned into contiguous shards that scan concurrently, sharing a
// best-so-far bound; each shard prunes with its own running bound (exact
// serial semantics) plus the shared bound under strict inequality, which
// keeps the reduced answer identical to a serial scan. mindists and all
// Dist fields are squared distances; the pruning logic is oblivious to the
// space because sqrt preserves order.
func (ix *TreeIndex) simsOverLeaves(q series.Series, mindists []float64, res Result) (Result, error) {
	dir := ix.bt.LeafDir()
	bases := make([]int, len(dir))
	base := 0
	for i, id := range dir {
		bases[i] = base
		base += ix.bt.LeafRecordCount(id)
	}
	workers := shard.Resolve(ix.opt.QueryWorkers, len(dir))
	var bound shard.BSF
	bound.Init(res.Dist)
	pos, dist, vr, vl, err := shard.ScanReduce(workers, len(dir), res.Pos, res.Dist, func(r shard.Range, local *shard.Outcome, cancelled func() bool) error {
		scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
		buf := make([]byte, ix.opt.LeafCap*ix.opt.recordSize())
		for li := r.Lo; li < r.Hi; li++ {
			if cancelled() {
				return nil
			}
			id := dir[li]
			cnt := ix.bt.LeafRecordCount(id)
			lb := bases[li]
			any := false
			for i := lb; i < lb+cnt && i < len(mindists); i++ {
				if mindists[i] < local.Dist && !bound.Prunes(mindists[i]) {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			n, err := ix.bt.ReadLeaf(id, buf)
			if err != nil {
				return err
			}
			local.VisitedLeaves++
			for i := 0; i < n; i++ {
				if lb+i >= len(mindists) || mindists[lb+i] >= local.Dist || bound.Prunes(mindists[lb+i]) {
					continue
				}
				rec := buf[i*ix.opt.recordSize() : (i+1)*ix.opt.recordSize()]
				pos, sq, err := ix.recordSquaredDistance(q, rec, scratch)
				if err != nil {
					return err
				}
				local.VisitedRecords++
				if sq < local.Dist {
					local.Dist, local.Pos = sq, pos
					bound.Lower(sq)
				}
			}
		}
		return nil
	})
	return applyScan(res, pos, dist, vr, vl), err
}

// simsOverRawFile is the non-materialized scan: candidates are remapped to
// raw-file position order so the dataset is read strictly forward, then the
// position range is partitioned into contiguous shards (each still reads
// its slice of the raw file in ascending position order). A shared
// best-so-far bound lets shards prune each other's candidates.
func (ix *TreeIndex) simsOverRawFile(q series.Series, mindists []float64, res Result) (Result, error) {
	type cand struct {
		pos int64
		lb  float64
	}
	cands := make([]cand, 0, 256)
	for i, lb := range mindists {
		if lb < res.Dist {
			cands = append(cands, cand{ix.positions[i], lb})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].pos < cands[b].pos })
	seriesLen := ix.opt.S.Params().SeriesLen
	workers := shard.Resolve(ix.opt.QueryWorkers, len(cands))
	var bound shard.BSF
	bound.Init(res.Dist)
	pos, dist, vr, vl, err := shard.ScanReduce(workers, len(cands), res.Pos, res.Dist, func(r shard.Range, local *shard.Outcome, cancelled func() bool) error {
		scratch := make(series.Series, seriesLen)
		for i := r.Lo; i < r.Hi; i++ {
			if cancelled() {
				return nil
			}
			c := cands[i]
			if c.lb >= local.Dist || bound.Prunes(c.lb) {
				continue // pruned by a bsf improvement since collection
			}
			if err := readRawAt(ix.rawFile, seriesLen, c.pos, scratch); err != nil {
				return err
			}
			local.VisitedRecords++
			// The abandon limit is the exact squared best-so-far — no more
			// squaring a rounded sqrt, so the limit is tight.
			sq, ok := series.SquaredEDEarlyAbandon(q, scratch, local.Dist)
			if !ok {
				continue
			}
			if sq < local.Dist {
				local.Dist, local.Pos = sq, c.pos
				bound.Lower(sq)
			}
		}
		return nil
	})
	return applyScan(res, pos, dist, vr, vl), err
}

// InsertBatch appends new series to the dataset and inserts them into the
// tree top-down with median splits (the update path of Figure 10a).
// Sorting the batch by key first concentrates the leaf touches — larger
// batches approach bulk-load locality, which is why Coconut wins when
// updates arrive in volume. InsertBatch takes the handle lock exclusively,
// so it serializes against in-flight queries.
func (ix *TreeIndex) InsertBatch(batch []series.Series) error {
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	p := ix.opt.S.Params()
	sz := int64(series.EncodedSize(p.SeriesLen))
	end, err := ix.rawFile.Size()
	if err != nil {
		return err
	}
	if end%sz != 0 {
		return fmt.Errorf("core: raw file size %d not aligned", end)
	}
	pos := end / sz

	type pending struct {
		key summary.Key
		pos int64
		raw []byte
	}
	pend := make([]pending, 0, len(batch))
	encoded := make([]byte, 0, sz)
	for _, s := range batch {
		if len(s) != p.SeriesLen {
			return fmt.Errorf("core: inserted series has length %d, want %d", len(s), p.SeriesLen)
		}
		encoded = series.AppendEncode(encoded[:0], s)
		if _, err := ix.rawFile.WriteAt(encoded, pos*sz); err != nil {
			return err
		}
		key, err := ix.opt.S.KeyOf(s)
		if err != nil {
			return err
		}
		pd := pending{key: key, pos: pos}
		if ix.opt.Materialized {
			pd.raw = append([]byte(nil), encoded...)
		}
		pend = append(pend, pd)
		pos++
	}
	sort.Slice(pend, func(a, b int) bool { return pend[a].key.Less(pend[b].key) })
	rec := make([]byte, ix.opt.recordSize())
	for _, pd := range pend {
		encodeRecord(rec, pd.key, pd.pos, pd.raw)
		if err := ix.bt.Insert(rec); err != nil {
			return err
		}
	}
	ix.count += int64(len(batch))
	ix.simsDirty = true
	ix.metaDirty = true
	ix.leafIdx = nil
	return nil
}

// ScanAllPositions streams every indexed position in key order (testing and
// verification helper).
func (ix *TreeIndex) ScanAllPositions() ([]int64, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	var out []int64
	err := ix.bt.ScanAll(func(rec []byte) error {
		_, pos, _ := decodeRecord(rec, false)
		out = append(out, pos)
		return nil
	})
	return out, err
}

var _ io.Closer = (*TreeIndex)(nil)
