package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"github.com/coconut-db/coconut/internal/bptree"
	"github.com/coconut-db/coconut/internal/extsort"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
	"github.com/coconut-db/coconut/internal/window"
)

// TreeIndex is Coconut-Tree (Algorithm 3): a balanced B+-tree bulk-loaded
// bottom-up over sorted invSAX keys. Leaves are contiguous, chained, and
// packed to the fill factor; approximate search lands on the leaf where the
// query's key would live, and exact search is CoconutTreeSIMS (Algorithm 5).
//
// A TreeIndex handle is safe for concurrent use: any number of queries
// (ApproxSearch, ExactSearch, ExactSearchKNN) may run at once on one
// handle, and InsertBatch/Close serialize against them through a
// handle-level RWMutex. Per-query scratch buffers are allocated per call,
// and the lazily rebuilt SIMS summary array and leaf-directory index are
// guarded by their own mutex.
type TreeIndex struct {
	opt     Options
	bt      *bptree.Tree
	rawFile storage.File
	count   int64
	// rawSums verifies raw-dataset reads when checksums are on; ownSums
	// marks the handle as this index's own (built/opened here, maintained
	// on inserts) rather than the partition layer's shared one.
	rawSums *storage.RecordSums
	ownSums bool
	// qmu is the handle lock: queries hold it shared, mutations
	// (InsertBatch, DropCaches, Close) exclusively.
	qmu sync.RWMutex
	// closed makes Close idempotent: a second Close (or one racing a
	// cancelled query's teardown) is a no-op instead of a double file close.
	closed bool
	// lazyMu guards the lazily (re)built state below: the SIMS summary
	// array refresh after inserts/Open, and the leaf-id -> chain-position
	// index. Queries only ever read that state after passing through a
	// lazyMu critical section, so concurrent readers are safe.
	lazyMu sync.Mutex
	// keys/positions hold the in-memory sorted summary array aligned with
	// the tree's leaf order (the paper: summaries are orders of magnitude
	// smaller than the data and stay in memory).
	keys      []summary.Key
	positions []int64
	// simsDirty marks the summary array stale after inserts.
	simsDirty bool
	// metaDirty marks the persisted meta (B+-tree directory + manifest)
	// stale after inserts; Sync/Close rewrite both.
	metaDirty bool
	// leafIdx maps a leaf page id to its chain position (lazily rebuilt).
	leafIdx map[int64]int
}

// teeSource forwards a sorted record stream into the bulk loader while
// capturing the (key, position) pairs for the in-memory summary array.
type teeSource struct {
	rr        *extsort.RecordReader
	keys      *[]summary.Key
	positions *[]int64
}

func (t *teeSource) Next() ([]byte, error) {
	rec, err := t.rr.Next()
	if err != nil {
		return nil, err
	}
	key, pos, _ := decodeRecord(rec, false)
	*t.keys = append(*t.keys, key)
	*t.positions = append(*t.positions, pos)
	return rec, nil
}

// BuildTree runs the full Coconut-Tree pipeline: summarize -> external sort
// -> UB-tree bulk load.
func BuildTree(opt Options) (*TreeIndex, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}

	sortedName := opt.Name + ".sorted"
	if err := sortRecords(&opt, raw, sortedName); err != nil {
		raw.Close()
		return nil, fmt.Errorf("core: sorting summarizations: %w", err)
	}

	rr, err := extsort.OpenRecords(opt.FS, sortedName, opt.recordSize(), 0)
	if err != nil {
		raw.Close()
		return nil, err
	}
	ix := &TreeIndex{opt: opt, rawFile: raw}
	tee := &teeSource{rr: rr, keys: &ix.keys, positions: &ix.positions}
	bt, err := bptree.BulkLoad(bptree.Config{
		FS:         opt.FS,
		Name:       opt.Name + ".bt",
		RecordSize: opt.recordSize(),
		KeyLen:     summary.KeySize,
		LeafCap:    opt.LeafCap,
		FillFactor: opt.FillFactor,
		Fanout:     opt.Fanout,
		Checksums:  opt.Checksums,
	}, tee)
	rr.Close()
	if err != nil {
		raw.Close()
		return nil, fmt.Errorf("core: bulk loading: %w", err)
	}
	_ = opt.FS.Remove(sortedName)
	if err := bt.Save(); err != nil {
		bt.Close()
		raw.Close()
		return nil, err
	}
	ix.bt = bt
	ix.count = bt.Count()
	if ix.rawSums, ix.ownSums, err = attachRawSums(&opt, raw, true); err != nil {
		bt.Close()
		raw.Close()
		return nil, err
	}
	// The manifest commit is the durability point: from here on the index
	// can be reopened with OpenTree without touching the raw dataset.
	if err := ix.writeManifest(); err != nil {
		bt.Close()
		raw.Close()
		return nil, err
	}
	return ix, nil
}

// OpenTree reopens a previously built Coconut-Tree from its manifest and
// persisted B+-tree. The options must name the same FS, Name, RawName,
// summarizer configuration, and materialization as the build — mismatches
// fail loudly with manifest.ErrConfigMismatch, and a manifest that
// disagrees with the B+-tree meta (stale or mixed builds) fails with
// manifest.ErrCorruptManifest. The tree geometry is restored from the
// persisted metadata and the in-memory summary array is rebuilt lazily on
// the first exact query — from the index's own leaves, never from the raw
// dataset.
func OpenTree(opt Options) (*TreeIndex, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	m, err := LoadManifest(opt.FS, opt.Name)
	if err != nil {
		return nil, err
	}
	if err := checkOpenConfig(&opt, m, manifest.VariantTree); err != nil {
		return nil, err
	}
	// Like Materialized, the checksummed-block layout is a property of the
	// stored bytes; adopt the manifest's flag so the pages are read the
	// only way they can be.
	opt.Checksums = m.Checksums
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	bt, err := bptree.Open(bptree.Config{FS: opt.FS, Name: opt.Name + ".bt", Checksums: opt.Checksums})
	if err != nil {
		raw.Close()
		return nil, err
	}
	stale, err := checkTreeGeometry(opt, m, bt.Geometry())
	if err != nil {
		bt.Close()
		raw.Close()
		return nil, err
	}
	ix := &TreeIndex{opt: opt, bt: bt, rawFile: raw, count: bt.Count(), simsDirty: true}
	if ix.rawSums, ix.ownSums, err = attachRawSums(&opt, raw, false); err != nil {
		bt.Close()
		raw.Close()
		return nil, err
	}
	if stale {
		// Crash window between meta save and manifest commit: the meta is
		// newer. Heal by recommitting the manifest from the live tree.
		if err := ix.writeManifest(); err != nil {
			bt.Close()
			raw.Close()
			return nil, err
		}
	}
	return ix, nil
}

// Count returns the number of indexed series.
func (ix *TreeIndex) Count() int64 {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.count
}

// NumLeaves returns the number of leaf pages.
func (ix *TreeIndex) NumLeaves() int {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.bt.NumLeaves()
}

// AvgLeafFill returns mean leaf occupancy (the paper's ~97%).
func (ix *TreeIndex) AvgLeafFill() float64 {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.bt.AvgLeafFill()
}

// Height returns the B+-tree height (leaves included).
func (ix *TreeIndex) Height() int {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.bt.Height()
}

// SizeBytes returns the on-device index footprint.
func (ix *TreeIndex) SizeBytes() int64 {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	return ix.bt.SizeBytes() + ix.bt.MetaSizeBytes()
}

// Sync persists any metadata made stale by inserts — the B+-tree leaf
// directory and the index manifest — so a subsequent OpenTree observes the
// inserted records. A freshly built or unmodified handle syncs for free.
func (ix *TreeIndex) Sync() error {
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	return ix.syncLocked()
}

func (ix *TreeIndex) syncLocked() error {
	if !ix.metaDirty {
		return nil
	}
	// Inserted raw bytes first (leaf records reference their positions),
	// then the raw CRC sidecar (it describes the fsynced raw bytes), then
	// the leaf file + meta (bt.Save syncs both), then the manifest.
	if err := ix.rawFile.Sync(); err != nil {
		return err
	}
	if ix.ownSums && ix.rawSums != nil {
		if err := ix.rawSums.Flush(); err != nil {
			return err
		}
	}
	if err := ix.bt.Save(); err != nil {
		return err
	}
	if err := ix.writeManifest(); err != nil {
		return err
	}
	ix.metaDirty = false
	return nil
}

// Close persists pending metadata (see Sync) and releases the file
// handles. It must not race in-flight queries; the handle lock makes it
// wait for them. Close is idempotent, and shards a cancelled query
// abandoned may still touch the files after Close — those reads fail with
// an I/O error that nobody reads, which is safe by construction.
func (ix *TreeIndex) Close() error {
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	if ix.closed {
		return nil
	}
	ix.closed = true
	syncErr := ix.syncLocked()
	err1 := ix.bt.Close()
	err2 := ix.rawFile.Close()
	if syncErr != nil {
		return syncErr
	}
	if err1 != nil {
		return err1
	}
	return err2
}

// DropCaches flushes the tree's page cache (cold-start experiments).
func (ix *TreeIndex) DropCaches() error {
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	return ix.bt.DropCache()
}

func (ix *TreeIndex) leafIndexOf(id int64) int {
	ix.lazyMu.Lock()
	defer ix.lazyMu.Unlock()
	if ix.leafIdx == nil || len(ix.leafIdx) != ix.bt.NumLeaves() {
		ix.leafIdx = make(map[int64]int, ix.bt.NumLeaves())
		for i, lid := range ix.bt.LeafDir() {
			ix.leafIdx[lid] = i
		}
	}
	return ix.leafIdx[id]
}

// recordSquaredDistance computes the true SQUARED distance from q to a
// leaf record. Internal search state stays in squared space end to end —
// lower bounds and best-so-far distances are compared without ever taking
// a square root — and only the public entry points materialize a Euclidean
// distance via finishResult.
func (ix *TreeIndex) recordSquaredDistance(q series.Series, rec []byte, scratch series.Series) (int64, float64, error) {
	_, pos, raw := decodeRecord(rec, ix.opt.Materialized)
	if raw != nil {
		series.DecodeInto(raw, scratch)
	} else if err := readRawAt(ix.rawFile, ix.rawSums, ix.opt.S.Params().SeriesLen, pos, scratch); err != nil {
		return 0, 0, err
	}
	sq, err := series.SquaredED(q, scratch)
	if err != nil {
		return 0, 0, err
	}
	return pos, sq, nil
}

// finishResult converts an internal squared-space Result into the public
// Euclidean form. sqrt is monotone on non-negative reals, so the winning
// (Pos, squared distance) pair picked by squared comparisons is the same
// record the sqrt-space scan would pick, and sqrt of its exact squared sum
// is byte-identical to the distance the sqrt-space scan would report.
func finishResult(res Result) Result {
	res.Dist = math.Sqrt(res.Dist)
	return res
}

// ApproxSearch implements Algorithm 4 on the sorted summary array: examine
// the ApproxWindow*(radius+1) records surrounding the query key's insertion
// position in the global record order — the paper's "all data series in a
// specific radius from this specific point ... usually a disk page" (§4.3)
// — fetching them in lower-bound order with early stop. The window depends
// only on the sorted record multiset, so the answer is identical across
// layouts (see internal/window). Safe for concurrent use.
func (ix *TreeIndex) ApproxSearch(q series.Series, radius int) (Result, error) {
	return ix.ApproxSearchCtx(context.Background(), q, radius)
}

// ApproxSearchCtx is ApproxSearch observing ctx: cancellation is checked
// before every candidate fetch, and a cancelled query returns ctx.Err().
func (ix *TreeIndex) ApproxSearchCtx(ctx context.Context, q series.Series, radius int) (Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	res, err := ix.approxSearch(ctx, q, radius)
	return finishResult(res), err
}

// approxSearch is the internal form of ApproxSearch; res.Dist holds the
// SQUARED best distance.
func (ix *TreeIndex) approxSearch(ctx context.Context, q series.Series, radius int) (Result, error) {
	res := Result{Pos: -1, Dist: math.Inf(1)}
	if ix.count == 0 {
		return res, ErrEmptyIndex
	}
	aw, err := ix.approxWindow(q, radius)
	if err != nil {
		return res, err
	}
	half := ix.opt.ApproxWindow * (radius + 1) / 2
	cands := window.Merge(aw.Below, aw.Above, half)
	pos, sq, visited, err := window.Eval(q, cands, CtxFetch(ctx, aw.Fetch))
	res.Pos, res.Dist = pos, sq
	res.VisitedRecords = visited
	res.VisitedLeaves = aw.Leaves
	return res, err
}

// ApproxWindowCands exposes the tree's window contribution to the
// partition layer's cross-partition approximate search. The returned
// fetcher reads index/dataset files after the handle lock is released; the
// partition layer serializes queries against mutations with its own lock.
// An empty index contributes nothing.
func (ix *TreeIndex) ApproxWindowCands(q series.Series, radius int) (ApproxWindow, error) {
	return ix.ApproxWindowCandsCtx(context.Background(), q, radius)
}

// ApproxWindowCandsCtx is ApproxWindowCands with cancellation: the
// returned window's Fetch observes ctx between records.
func (ix *TreeIndex) ApproxWindowCandsCtx(ctx context.Context, q series.Series, radius int) (ApproxWindow, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	if ix.count == 0 {
		return ApproxWindow{}, nil
	}
	aw, err := ix.approxWindow(q, radius)
	aw.Fetch = CtxFetch(ctx, aw.Fetch)
	return aw, err
}

// approxWindow collects the tree's window contribution: the trailing and
// leading half-windows around the query key's insertion position in the
// sorted summary array. Leaves counts the leaf pages the window ordinals
// span.
func (ix *TreeIndex) approxWindow(q series.Series, radius int) (ApproxWindow, error) {
	var aw ApproxWindow
	if err := ix.ensureSIMS(); err != nil {
		return aw, err
	}
	key, err := ix.opt.S.KeyOf(q)
	if err != nil {
		return aw, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return aw, err
	}
	p := ix.opt.S.Params()
	half := ix.opt.ApproxWindow * (radius + 1) / 2
	ins := sort.Search(len(ix.keys), func(i int) bool { return !ix.keys[i].Less(key) })
	lo, hi := ins-half, ins+half
	if lo < 0 {
		lo = 0
	}
	if hi > len(ix.keys) {
		hi = len(ix.keys)
	}
	saxScratch := make(summary.SAX, p.Segments)
	for i := lo; i < hi; i++ {
		sax := summary.DeinterleaveInto(ix.keys[i], p.CardBits, saxScratch)
		c := window.Cand{Key: ix.keys[i], Pos: ix.positions[i], LB: ix.opt.S.MinDistSqPAAToSAX(qPAA, sax), Ord: i}
		if i < ins {
			aw.Below = append(aw.Below, c)
		} else {
			aw.Above = append(aw.Above, c)
		}
	}
	if lo < hi {
		_, bases := ix.leafBases()
		aw.Leaves = int64(leafOfOrd(bases, hi-1) - leafOfOrd(bases, lo) + 1)
	}
	aw.Fetch = ix.windowFetch()
	return aw, nil
}

// leafBases returns the leaf directory and each leaf's starting ordinal in
// the global record order.
func (ix *TreeIndex) leafBases() ([]int64, []int) {
	dir := ix.bt.LeafDir()
	bases := make([]int, len(dir))
	base := 0
	for i, id := range dir {
		bases[i] = base
		base += ix.bt.LeafRecordCount(id)
	}
	return dir, bases
}

// windowFetch returns the per-query window candidate fetcher:
// non-materialized indexes read the raw dataset (exactly one read per
// visited record — what Result.VisitedRecords counts), materialized
// indexes read their own leaves, caching each page for the duration of the
// query and never touching the raw dataset.
func (ix *TreeIndex) windowFetch() window.FetchFunc {
	seriesLen := ix.opt.S.Params().SeriesLen
	if !ix.opt.Materialized {
		return func(c window.Cand, dst series.Series) error {
			return readRawAt(ix.rawFile, ix.rawSums, seriesLen, c.Pos, dst)
		}
	}
	recSize := ix.opt.recordSize()
	var (
		dir   []int64
		bases []int
		cache map[int][]byte
	)
	return func(c window.Cand, dst series.Series) error {
		if cache == nil {
			dir, bases = ix.leafBases()
			cache = make(map[int][]byte)
		}
		li := leafOfOrd(bases, c.Ord)
		buf, ok := cache[li]
		if !ok {
			b := make([]byte, ix.opt.LeafCap*recSize)
			n, err := ix.bt.ReadLeaf(dir[li], b)
			if err != nil {
				return err
			}
			buf = b[:n*recSize]
			cache[li] = buf
		}
		_, _, raw := decodeRecord(buf[(c.Ord-bases[li])*recSize:(c.Ord-bases[li]+1)*recSize], true)
		series.DecodeInto(raw, dst)
		return nil
	}
}

// ensureSIMS rebuilds the in-memory sorted summary array after updates by
// one sequential pass over the chained leaves. The rebuild is serialized on
// lazyMu; concurrent queries that lose the race wait and then read the
// fresh arrays (the mutex's happens-before makes that safe).
func (ix *TreeIndex) ensureSIMS() error {
	ix.lazyMu.Lock()
	defer ix.lazyMu.Unlock()
	if !ix.simsDirty {
		return nil
	}
	ix.keys = ix.keys[:0]
	ix.positions = ix.positions[:0]
	err := ix.bt.ScanAll(func(rec []byte) error {
		key, pos, _ := decodeRecord(rec, false)
		ix.keys = append(ix.keys, key)
		ix.positions = append(ix.positions, pos)
		return nil
	})
	if err != nil {
		return err
	}
	ix.simsDirty = false
	return nil
}

// ExactSearch runs CoconutTreeSIMS (Algorithm 5): approximate search seeds
// the best-so-far, lower bounds are computed for all series in parallel
// from the in-memory sorted summaries, and unpruned candidates are fetched
// with a skip-sequential scan sharded across Options.QueryWorkers — over
// the tree's own leaves when materialized, over the raw file in position
// order otherwise. Safe for concurrent use; (Pos, Dist) is identical for
// any worker count.
func (ix *TreeIndex) ExactSearch(q series.Series, radius int) (Result, error) {
	return ix.ExactSearchCtx(context.Background(), q, radius)
}

// ExactSearchCtx is ExactSearch observing ctx: cancellation is checked at
// leaf-visit granularity in the verification scan, a cancelled query
// returns ctx.Err() promptly (never a partial answer), and shards stuck in
// a blocking read are abandoned rather than waited for.
func (ix *TreeIndex) ExactSearchCtx(ctx context.Context, q series.Series, radius int) (Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	res, err := ix.exactSearch(ctx, q, radius)
	return finishResult(res), err
}

// exactSearch runs the whole SIMS pipeline in squared space: the seed, the
// lower bounds, the shared best-so-far, and the verification scans all
// carry squared distances, so the per-key sqrt of the old kernel and the
// per-candidate sqrt of the old scan are gone entirely.
func (ix *TreeIndex) exactSearch(ctx context.Context, q series.Series, radius int) (Result, error) {
	res, err := ix.approxSearch(ctx, q, radius)
	if err != nil {
		return res, err
	}
	var bound shard.BSF
	bound.Init(res.Dist)
	return ix.exactVerify(ctx, q, res, &bound)
}

// exactVerify is the SIMS verification phase: res carries the (squared)
// seed answer, bound the shared best-so-far — the query's own when
// monolithic, the cross-partition bound when scatter-gathered.
func (ix *TreeIndex) exactVerify(ctx context.Context, q series.Series, res Result, bound *shard.BSF) (Result, error) {
	if err := ix.ensureSIMS(); err != nil {
		return res, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	mindists := ix.opt.S.MinDistsToKeys(qPAA, ix.keys, ix.opt.QueryWorkers)

	if ix.opt.Materialized {
		return ix.simsOverLeaves(ctx, q, mindists, res, bound)
	}
	return ix.simsOverRawFile(ctx, q, mindists, res, bound)
}

// ExactVerify runs only the verification phase against an externally
// computed seed (the partition layer's global approximate answer) and a
// shared cross-partition bound. The returned Result is in SQUARED space
// and its counters cover this index's verification work only; an index
// that finds no improvement returns the seed unchanged.
func (ix *TreeIndex) ExactVerify(q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (Result, error) {
	return ix.ExactVerifyCtx(context.Background(), q, seedPos, seedSq, bound)
}

// ExactVerifyCtx is ExactVerify observing ctx (see ExactSearchCtx).
func (ix *TreeIndex) ExactVerifyCtx(ctx context.Context, q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	res := Result{Pos: seedPos, Dist: seedSq}
	if ix.count == 0 {
		return res, nil
	}
	return ix.exactVerify(ctx, q, res, bound)
}

// applyScan folds a ScanReduce result into res.
func applyScan(res Result, pos int64, dist float64, vr, vl int64) Result {
	res.Pos, res.Dist = pos, dist
	res.VisitedRecords += vr
	res.VisitedLeaves += vl
	return res
}

// simsOverLeaves is the materialized scan: walk the leaf directory in
// order, skipping leaves with no unpruned candidate. The directory is
// partitioned into contiguous shards that scan concurrently, sharing a
// best-so-far bound; each shard prunes with its own running bound (exact
// serial semantics) plus the shared bound under strict inequality, which
// keeps the reduced answer identical to a serial scan. mindists and all
// Dist fields are squared distances; the pruning logic is oblivious to the
// space because sqrt preserves order.
func (ix *TreeIndex) simsOverLeaves(ctx context.Context, q series.Series, mindists []float64, res Result, bound *shard.BSF) (Result, error) {
	dir, bases := ix.leafBases()
	workers := shard.Resolve(ix.opt.QueryWorkers, len(dir))
	pos, dist, vr, vl, err := shard.ScanReduceCtx(ctx, workers, len(dir), res.Pos, res.Dist, func(r shard.Range, local *shard.Outcome, cancelled func() bool) error {
		scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
		buf := make([]byte, ix.opt.LeafCap*ix.opt.recordSize())
		for li := r.Lo; li < r.Hi; li++ {
			if cancelled() {
				return nil
			}
			id := dir[li]
			cnt := ix.bt.LeafRecordCount(id)
			lb := bases[li]
			any := false
			for i := lb; i < lb+cnt && i < len(mindists); i++ {
				if mindists[i] < local.Dist && !bound.Prunes(mindists[i]) {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			n, err := ix.bt.ReadLeaf(id, buf)
			if err != nil {
				return err
			}
			local.VisitedLeaves++
			for i := 0; i < n; i++ {
				if lb+i >= len(mindists) || mindists[lb+i] >= local.Dist || bound.Prunes(mindists[lb+i]) {
					continue
				}
				rec := buf[i*ix.opt.recordSize() : (i+1)*ix.opt.recordSize()]
				pos, sq, err := ix.recordSquaredDistance(q, rec, scratch)
				if err != nil {
					return err
				}
				local.VisitedRecords++
				if sq < local.Dist {
					local.Dist, local.Pos = sq, pos
					bound.Lower(sq)
				}
			}
		}
		return nil
	})
	return applyScan(res, pos, dist, vr, vl), err
}

// simsOverRawFile is the non-materialized scan: candidates are remapped to
// raw-file position order so the dataset is read strictly forward, then the
// position range is partitioned into contiguous shards (each still reads
// its slice of the raw file in ascending position order). A shared
// best-so-far bound lets shards prune each other's candidates.
func (ix *TreeIndex) simsOverRawFile(ctx context.Context, q series.Series, mindists []float64, res Result, bound *shard.BSF) (Result, error) {
	type cand struct {
		pos int64
		lb  float64
	}
	cands := make([]cand, 0, 256)
	for i, lb := range mindists {
		if lb < res.Dist && !bound.Prunes(lb) {
			cands = append(cands, cand{ix.positions[i], lb})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].pos < cands[b].pos })
	seriesLen := ix.opt.S.Params().SeriesLen
	workers := shard.Resolve(ix.opt.QueryWorkers, len(cands))
	pos, dist, vr, vl, err := shard.ScanReduceCtx(ctx, workers, len(cands), res.Pos, res.Dist, func(r shard.Range, local *shard.Outcome, cancelled func() bool) error {
		scratch := make(series.Series, seriesLen)
		for i := r.Lo; i < r.Hi; i++ {
			if cancelled() {
				return nil
			}
			c := cands[i]
			if c.lb >= local.Dist || bound.Prunes(c.lb) {
				continue // pruned by a bsf improvement since collection
			}
			if err := readRawAt(ix.rawFile, ix.rawSums, seriesLen, c.pos, scratch); err != nil {
				return err
			}
			local.VisitedRecords++
			// The abandon limit is the exact squared best-so-far — no more
			// squaring a rounded sqrt, so the limit is tight.
			sq, ok := series.SquaredEDEarlyAbandon(q, scratch, local.Dist)
			if !ok {
				continue
			}
			if sq < local.Dist {
				local.Dist, local.Pos = sq, c.pos
				bound.Lower(sq)
			}
		}
		return nil
	})
	return applyScan(res, pos, dist, vr, vl), err
}

// InsertBatch appends new series to the dataset and inserts them into the
// tree top-down with median splits (the update path of Figure 10a).
// Sorting the batch by key first concentrates the leaf touches — larger
// batches approach bulk-load locality, which is why Coconut wins when
// updates arrive in volume. InsertBatch takes the handle lock exclusively,
// so it serializes against in-flight queries.
func (ix *TreeIndex) InsertBatch(batch []series.Series) error {
	return ix.InsertBatchCtx(context.Background(), batch)
}

// InsertBatchCtx is InsertBatch with cancellation checked only at entry
// (and while queued on the handle lock is not interruptible): once raw
// bytes start landing the batch runs to completion, because a half-applied
// insert would leave the tree and the dataset disagreeing. Write-path
// cancellation is therefore admission control, not abort.
func (ix *TreeIndex) InsertBatchCtx(ctx context.Context, batch []series.Series) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	p := ix.opt.S.Params()
	sz := int64(series.EncodedSize(p.SeriesLen))
	end, err := ix.rawFile.Size()
	if err != nil {
		return err
	}
	if end%sz != 0 {
		return fmt.Errorf("core: raw file size %d not aligned", end)
	}
	pos := end / sz

	recs := make([]InsertRec, 0, len(batch))
	encoded := make([]byte, 0, sz)
	for _, s := range batch {
		if len(s) != p.SeriesLen {
			return fmt.Errorf("core: inserted series has length %d, want %d", len(s), p.SeriesLen)
		}
		encoded = series.AppendEncode(encoded[:0], s)
		if _, err := ix.rawFile.WriteAt(encoded, pos*sz); err != nil {
			return err
		}
		if ix.ownSums && ix.rawSums != nil {
			ix.rawSums.Set(pos, encoded)
		}
		key, err := ix.opt.S.KeyOf(s)
		if err != nil {
			return err
		}
		rec := InsertRec{Key: key, Pos: pos}
		if ix.opt.Materialized {
			rec.Raw = append([]byte(nil), encoded...)
		}
		recs = append(recs, rec)
		pos++
	}
	return ix.insertRecsLocked(recs)
}

// InsertRecords inserts pre-summarized records whose raw bytes were
// already written to the shared dataset file by the partition layer.
func (ix *TreeIndex) InsertRecords(recs []InsertRec) error {
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	return ix.insertRecsLocked(append([]InsertRec(nil), recs...))
}

// insertRecsLocked is the shared tail of the insert paths: sort the batch
// by key to concentrate leaf touches, insert top-down with median splits,
// and mark the lazily rebuilt state stale. recs is sorted in place.
func (ix *TreeIndex) insertRecsLocked(recs []InsertRec) error {
	if len(recs) == 0 {
		return nil
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Key.Less(recs[b].Key) })
	rec := make([]byte, ix.opt.recordSize())
	for _, r := range recs {
		encodeRecord(rec, r.Key, r.Pos, r.Raw)
		if err := ix.bt.Insert(rec); err != nil {
			return err
		}
	}
	ix.count += int64(len(recs))
	ix.simsDirty = true
	ix.metaDirty = true
	ix.leafIdx = nil
	return nil
}

// ScanAllPositions streams every indexed position in key order (testing and
// verification helper).
func (ix *TreeIndex) ScanAllPositions() ([]int64, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	var out []int64
	err := ix.bt.ScanAll(func(rec []byte) error {
		_, pos, _ := decodeRecord(rec, false)
		out = append(out, pos)
		return nil
	})
	return out, err
}

var _ io.Closer = (*TreeIndex)(nil)
