package core

// Concurrency stress tests: run with -race (CI does). They assert both
// memory safety (no data races on a shared handle) and answer sanity while
// queries of every flavor overlap with each other and with inserts.

import (
	"sync"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
)

// TestConcurrentTreeQueriesSharedHandle hammers ONE TreeIndex handle with
// overlapping ExactSearch / ApproxSearch / ExactSearchKNN calls across
// materialized and non-materialized variants and several QueryWorkers
// settings.
func TestConcurrentTreeQueriesSharedHandle(t *testing.T) {
	for _, mat := range []bool{false, true} {
		for _, qw := range []int{1, 4} {
			fs, _ := fixtureFS(t)
			opt := baseOptions(t, fs, mat)
			opt.QueryWorkers = qw
			ix, err := BuildTree(opt)
			if err != nil {
				t.Fatal(err)
			}
			qs := dataset.Queries(dataset.NewRandomWalk(), 6, tLen, 23)
			var wg sync.WaitGroup
			errs := make(chan error, 64)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					q := qs[g%len(qs)]
					for it := 0; it < 3; it++ {
						switch (g + it) % 3 {
						case 0:
							if _, err := ix.ExactSearch(q, 1); err != nil {
								errs <- err
								return
							}
						case 1:
							if _, err := ix.ApproxSearch(q, 1); err != nil {
								errs <- err
								return
							}
						default:
							if _, _, err := ix.ExactSearchKNN(q, 3, 1); err != nil {
								errs <- err
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("mat=%v workers=%d: %v", mat, qw, err)
			}
			ix.Close()
		}
	}
}

// TestConcurrentTreeQueriesWithInserts interleaves queries with InsertBatch
// on one handle: inserts mark the SIMS summary array dirty, so the queries
// racing in afterwards all contend on the refresh lock — the regression
// this test exists to catch.
func TestConcurrentTreeQueriesWithInserts(t *testing.T) {
	fs, _ := fixtureFS(t)
	opt := baseOptions(t, fs, false)
	opt.QueryWorkers = 4
	ix, err := BuildTree(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	qs := dataset.Queries(dataset.NewRandomWalk(), 4, tLen, 29)
	batches := dataset.Generate(dataset.NewSeismic(), 120, tLen, 31)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := qs[g%len(qs)]
			for it := 0; it < 4; it++ {
				if _, err := ix.ExactSearch(q, 0); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := 0; lo < len(batches); lo += 30 {
			if err := ix.InsertBatch(batches[lo : lo+30]); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ix.Count() != tCount+int64(len(batches)) {
		t.Fatalf("Count = %d after concurrent inserts", ix.Count())
	}
	// Post-condition: a fresh query sees every inserted series.
	res, err := ix.ExactSearch(batches[13], 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 {
		t.Fatalf("inserted series lost during concurrent load: %v", res.Dist)
	}
}

// TestConcurrentTrieQueriesSharedHandle does the same for the (immutable)
// trie variant.
func TestConcurrentTrieQueriesSharedHandle(t *testing.T) {
	fs, _ := fixtureFS(t)
	opt := baseOptions(t, fs, false)
	opt.QueryWorkers = 4
	ix, err := BuildTrie(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	qs := dataset.Queries(dataset.NewRandomWalk(), 6, tLen, 37)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := qs[g%len(qs)]
			for it := 0; it < 3; it++ {
				if it%2 == 0 {
					if _, err := ix.ExactSearch(q, 1); err != nil {
						errs <- err
						return
					}
				} else if _, err := ix.ApproxSearch(q, 1); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
