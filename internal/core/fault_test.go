package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
)

// TestBuildSurvivesInjectedFaults verifies that device failures during any
// construction phase surface as errors (no panics, no partial silence).
func TestBuildSurvivesInjectedFaults(t *testing.T) {
	boom := errors.New("injected device failure")
	// Fail the Nth write, for a spread of N covering the sort, bulk-load,
	// and metadata phases.
	for _, failAt := range []int{1, 3, 10, 30, 100} {
		for _, variant := range []string{"tree", "trie"} {
			fs, _ := fixtureFS(t)
			// The sort's run/merge workers write concurrently, so the hook
			// must count atomically.
			var writes atomic.Int64
			fs.SetFault(func(op storage.Op, name string, off int64, n int) error {
				if op == storage.OpWrite && writes.Add(1) == int64(failAt) {
					return boom
				}
				return nil
			})
			opt := baseOptions(t, fs, false)
			var err error
			if variant == "tree" {
				_, err = BuildTree(opt)
			} else {
				_, err = BuildTrie(opt)
			}
			// Depending on failAt the build may succeed (fault landed after
			// the last write) or fail; it must never fail silently.
			if writes.Load() >= int64(failAt) && err == nil {
				t.Fatalf("%s failAt=%d: fault consumed but build reported success", variant, failAt)
			}
			if err != nil && !errors.Is(err, boom) {
				t.Fatalf("%s failAt=%d: error lost its cause: %v", variant, failAt, err)
			}
		}
	}
}

func TestQuerySurvivesInjectedReadFaults(t *testing.T) {
	boom := errors.New("injected read failure")
	fs, _ := fixtureFS(t)
	ix, err := BuildTree(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := mustQuery(t)
	// Sanity: works before the fault.
	if _, err := ix.ExactSearch(q, 0); err != nil {
		t.Fatal(err)
	}
	// Fail every device read; with the page cache dropped, the approximate
	// phase's first leaf read must hit the device and fail.
	if err := ix.DropCaches(); err != nil {
		t.Fatal(err)
	}
	fs.SetFault(func(op storage.Op, name string, off int64, n int) error {
		if op == storage.OpRead {
			return boom
		}
		return nil
	})
	if _, err := ix.ExactSearch(q, 0); err == nil {
		t.Fatal("expected read fault to propagate")
	} else if !errors.Is(err, boom) {
		t.Fatalf("error lost its cause: %v", err)
	}
	fs.SetFault(nil)
	// Index usable again once the device recovers.
	if _, err := ix.ExactSearch(q, 0); err != nil {
		t.Fatalf("index unusable after fault cleared: %v", err)
	}
}

func mustQuery(t *testing.T) series.Series {
	t.Helper()
	_, data := fixtureFS(t)
	return data[0].Clone()
}

// TestShardedScanFaultCancelsSiblings injects a storage read failure into
// the SHARDED candidate-verification phase of exact search (the approximate
// phase is allowed to succeed first): the failing shard must cancel its
// siblings, the error must surface with its cause intact, and no scan
// goroutine may leak.
func TestShardedScanFaultCancelsSiblings(t *testing.T) {
	boom := errors.New("injected shard read failure")
	for _, variant := range []string{"tree", "trie"} {
		fs, _ := fixtureFS(t)
		opt := baseOptions(t, fs, false)
		opt.QueryWorkers = 4
		var exact, approx func(series.Series, int) (Result, error)
		var closeIx func() error
		if variant == "tree" {
			ix, err := BuildTree(opt)
			if err != nil {
				t.Fatal(err)
			}
			exact, approx, closeIx = ix.ExactSearch, ix.ApproxSearch, ix.Close
		} else {
			ix, err := BuildTrie(opt)
			if err != nil {
				t.Fatal(err)
			}
			exact, approx, closeIx = ix.ExactSearch, ix.ApproxSearch, ix.Close
		}
		// A non-member query: the verification scan must fetch real
		// candidates (a member query is answered at distance 0 by the
		// approximate phase and verifies nothing).
		q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 61)[0]

		// Measure how many raw reads the (deterministic) approximate phase
		// performs, so the fault can be armed to hit only the sharded
		// verification scan that follows it inside ExactSearch.
		pre, err := approx(q, 0)
		if err != nil {
			t.Fatal(err)
		}

		baseline := runtime.NumGoroutine()
		var rawReads atomic.Int64
		fs.SetFault(func(op storage.Op, name string, off int64, n int) error {
			if op == storage.OpRead && name == "raw" && rawReads.Add(1) > pre.VisitedRecords {
				return boom
			}
			return nil
		})
		if _, err := exact(q, 0); err == nil {
			t.Fatalf("%s: expected sharded-scan fault to propagate", variant)
		} else if !errors.Is(err, boom) {
			t.Fatalf("%s: error lost its cause: %v", variant, err)
		}
		fs.SetFault(nil)

		// All shard goroutines must have been joined (no leaks). Allow the
		// runtime a moment to retire exiting goroutines.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > baseline {
			t.Fatalf("%s: %d goroutines leaked from cancelled shards", variant, got-baseline)
		}

		// The handle stays usable once the device recovers.
		if _, err := exact(q, 0); err != nil {
			t.Fatalf("%s: index unusable after fault cleared: %v", variant, err)
		}
		closeIx()
	}
}
