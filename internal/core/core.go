// Package core implements Coconut, the paper's contribution: data series
// indexes built bottom-up over SORTABLE summarizations (invSAX — z-order
// interleaved SAX bits).
//
// Both variants share the same pipeline (§4): one sequential pass over the
// raw file computes each series' invSAX key, the (key, position[, raw])
// records are externally sorted under the memory budget, and the index is
// bulk-loaded from the sorted stream:
//
//   - Coconut-Trie (Algorithm 2) groups the sorted records into an
//     iSAX-style prefix trie whose leaves are written contiguously
//     (insertBottomUp + CompactSubtree — realized here as the equivalent
//     recursive partitioning of the sorted key range along interleaved
//     bits, which yields exactly the maximal prefix-aligned leaf groups).
//   - Coconut-Tree (Algorithm 3) feeds the sorted stream into the
//     UB-tree-style B+-tree bulk loader: a balanced, contiguous index whose
//     leaves are packed to the configured fill factor.
//
// The "-Full" (materialized) variants carry the raw series through the sort
// and into the leaves; the plain variants store only (key, position) and
// fetch raw data from the dataset file at query time.
package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"

	"github.com/coconut-db/coconut/internal/extsort"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
	"github.com/coconut-db/coconut/internal/window"
)

// Variant selects the bottom-up index layout.
type Variant int

// Variants.
const (
	// Tree is Coconut-Tree: median-split balanced B+-tree (the paper's
	// recommended design).
	Tree Variant = iota
	// Trie is Coconut-Trie: prefix-split bottom-up trie.
	Trie
)

func (v Variant) String() string {
	if v == Trie {
		return "Coconut-Trie"
	}
	return "Coconut-Tree"
}

// Options configures a build.
type Options struct {
	// FS hosts the index files and the raw dataset file.
	FS storage.FS
	// Name is the base name for index files.
	Name string
	// S fixes the summarization scheme.
	S *summary.Summarizer
	// RawName is the dataset file in raw binary format.
	RawName string
	// RecordsName optionally names a pre-summarized (key, position[, raw])
	// record file to bulk-load from, skipping the summarization pass over
	// the dataset — the partition scatter path. The raw dataset file named
	// by RawName is still opened for query-time fetches.
	RecordsName string
	// Variant picks Coconut-Tree or Coconut-Trie.
	Variant Variant
	// Materialized stores raw series inside the index ("-Full" variants).
	Materialized bool
	// LeafCap is the records-per-leaf capacity (paper: 2000).
	LeafCap int
	// FillFactor packs bulk-loaded Tree leaves to this fraction (default 1:
	// "as compactly as possible"; lower it to leave room for updates).
	FillFactor float64
	// MemBudgetBytes is the memory budget M for sorting and buffering.
	MemBudgetBytes int64
	// Workers is the number of concurrent workers used by the bulk-load
	// external sort (0 means runtime.NumCPU()). The built index is
	// byte-identical for any value.
	Workers int
	// QueryWorkers is the fan-out of a SINGLE query: the SIMS lower-bound
	// computation and the candidate-verification scan are sharded across
	// this many goroutines (0 means runtime.GOMAXPROCS(0); the effective
	// count is clamped to the work available, never degenerating to 1).
	// ExactSearch returns identical (Pos, Dist) for any value; only the
	// Visited* counters and the I/O interleaving vary, so experiments that
	// compare I/O traces pin QueryWorkers to 1.
	QueryWorkers int
	// Fanout is the B+-tree internal fan-out (Tree variant, default 64).
	Fanout int
	// ApproxWindow caps how many records around the query's sort position
	// a NON-materialized approximate search fetches from the raw file
	// (scaled by radius+1) — the paper's "all data series in a specific
	// radius from this specific point ... usually a disk page" (§4.3).
	// Materialized indexes scan whole leaves instead (the raw data is
	// already there). Default 32.
	ApproxWindow int
	// Checksums writes the index's block files (B+-tree pages, trie leaf
	// pages) in the checksummed-block format and maintains a per-record
	// CRC sidecar for the raw dataset, making every read path detect
	// bit rot as storage.ErrCorruptData instead of serving wrong bytes.
	// Like Materialized, the flag is a property of the stored bytes: it is
	// recorded in the manifest and the Open paths adopt the stored value.
	Checksums bool
	// RawSums optionally supplies an externally owned raw-dataset CRC
	// sidecar (the partition layer's: the parent owns the shared raw file
	// and its sidecar, children verify through the shared handle). When
	// nil and Checksums is set, the index builds and maintains its own.
	RawSums *storage.RecordSums
}

func (o *Options) validate() error {
	switch {
	case o.FS == nil:
		return errors.New("core: nil FS")
	case o.Name == "":
		return errors.New("core: empty name")
	case o.S == nil:
		return errors.New("core: nil summarizer")
	case o.RawName == "":
		return errors.New("core: empty raw file name")
	case o.LeafCap < 2:
		return errors.New("core: leaf capacity must be at least 2")
	}
	if o.MemBudgetBytes <= 0 {
		o.MemBudgetBytes = 64 << 20
	}
	if o.FillFactor <= 0 || o.FillFactor > 1 {
		o.FillFactor = 1
	}
	if o.Fanout < 2 {
		o.Fanout = 64
	}
	if o.ApproxWindow <= 0 {
		o.ApproxWindow = 32
	}
	return nil
}

// recordSize returns the sort/leaf record size for the configuration.
func (o *Options) recordSize() int {
	n := summary.KeySize + 8
	if o.Materialized {
		n += series.EncodedSize(o.S.Params().SeriesLen)
	}
	return n
}

// Result is a search answer.
type Result struct {
	// Pos is the ordinal of the answer in the raw file (-1 when empty).
	Pos int64
	// Dist is the Euclidean distance to the query.
	Dist float64
	// VisitedRecords counts series whose true distance was computed
	// (Figure 9f).
	VisitedRecords int64
	// VisitedLeaves counts leaf pages read.
	VisitedLeaves int64
}

// encodeRecord packs (key, pos[, raw series]) into dst.
func encodeRecord(dst []byte, key summary.Key, pos int64, raw []byte) {
	copy(dst, key[:])
	binary.LittleEndian.PutUint64(dst[summary.KeySize:], uint64(pos))
	if raw != nil {
		copy(dst[summary.KeySize+8:], raw)
	}
}

// decodeRecord unpacks a record; raw aliases rec's storage when present.
func decodeRecord(rec []byte, materialized bool) (key summary.Key, pos int64, raw []byte) {
	copy(key[:], rec[:summary.KeySize])
	pos = int64(binary.LittleEndian.Uint64(rec[summary.KeySize:]))
	if materialized {
		raw = rec[summary.KeySize+8:]
	}
	return key, pos, raw
}

// SummaryRecordReader streams the (invSAX, position[, raw]) sort records of
// a raw dataset file — phase one of Algorithms 2 and 3 (lines 2-8) — as a
// batched pipeline: a producer goroutine reads raw series in blocks, and
// workers goroutines compute the invSAX keys and record encodings
// concurrently (each with its own decode and key scratch, so the per-series
// cost is allocation-free; in materialized mode the raw bytes are copied
// straight from the input block, never re-encoded). Blocks are drained in
// input order, so the stream is byte-identical for any worker count.
//
// The caller must Close the returned reader when done with it, including
// when the downstream consumer (the external sort) fails early. Coconut-LSM
// shares this source for its initial bulk load.
func SummaryRecordReader(s *summary.Summarizer, raw storage.File, materialized bool, workers int) (*extsort.TransformReader, error) {
	p := s.Params()
	inSize := series.EncodedSize(p.SeriesLen)
	outSize := summary.KeySize + 8
	if materialized {
		outSize += inSize
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	type scratch struct {
		ser series.Series
		ks  summary.KeyScratch
	}
	scratches := make([]scratch, workers)
	for i := range scratches {
		scratches[i].ser = make(series.Series, p.SeriesLen)
	}
	return extsort.NewTransformReader(extsort.TransformConfig{
		In:            storage.NewSequentialReader(raw, 0, -1, 0),
		InRecordSize:  inSize,
		OutRecordSize: outSize,
		Workers:       workers,
		Transform: func(worker int, in, out []byte, base int64) error {
			sc := &scratches[worker]
			n := len(in) / inSize
			for i := 0; i < n; i++ {
				rawRec := in[i*inSize : (i+1)*inSize]
				series.DecodeInto(rawRec, sc.ser)
				key, err := s.KeyOfScratch(sc.ser, &sc.ks)
				if err != nil {
					return err
				}
				rec := out[i*outSize : (i+1)*outSize]
				if materialized {
					encodeRecord(rec, key, base+int64(i), rawRec)
				} else {
					encodeRecord(rec, key, base+int64(i), nil)
				}
			}
			return nil
		},
	})
}

// ErrEmptyIndex is returned when searching an index with no records.
var ErrEmptyIndex = errors.New("core: index is empty")

// sortRecords externally sorts the build's record stream into sortedName:
// from a pre-summarized record file when opt.RecordsName is set (the
// partition scatter path), otherwise by summarizing the raw dataset.
func sortRecords(opt *Options, raw storage.File, sortedName string) error {
	cfg := extsort.Config{
		FS:         opt.FS,
		RecordSize: opt.recordSize(),
		Compare:    extsort.CompareKeyPrefix(summary.KeySize),
		MemBudget:  opt.MemBudgetBytes,
		TempPrefix: opt.Name + ".sort",
		Workers:    opt.Workers,
	}
	if opt.RecordsName != "" {
		rf, err := opt.FS.Open(opt.RecordsName)
		if err != nil {
			return err
		}
		_, err = extsort.Sort(cfg, storage.NewSequentialReader(rf, 0, -1, 0), sortedName)
		if cerr := rf.Close(); err == nil {
			err = cerr
		}
		return err
	}
	src, err := SummaryRecordReader(opt.S, raw, opt.Materialized, opt.Workers)
	if err != nil {
		return err
	}
	_, err = extsort.Sort(cfg, src, sortedName)
	src.Close()
	return err
}

// ApproxWindow is one index's contribution to a (possibly cross-partition)
// approximate search: its window candidates below and at-or-above the
// query key under the global record order, a fetcher that loads any of
// them, and the I/O accounting for collecting them. See internal/window
// for the semantics that make these contributions composable.
type ApproxWindow struct {
	// Below and Above are the candidates with key < query key (the source's
	// trailing half-window) and key >= query key (its leading half-window).
	Below, Above []window.Cand
	// Fetch loads one of this source's candidates (serial, per-query).
	Fetch window.FetchFunc
	// Leaves counts the leaf pages the window spans (LSM: runs probed).
	Leaves int64
}

// CtxFetch wraps a window fetcher with a cancellation check before every
// fetch — the approximate phase's fetches are serial, so per-fetch checks
// are the natural cancellation granularity there (the sharded verification
// scans detach instead; see shard.ScanCtx). A Background context wraps to
// the original fetcher unchanged.
func CtxFetch(ctx context.Context, f window.FetchFunc) window.FetchFunc {
	if ctx.Done() == nil {
		return f
	}
	return func(c window.Cand, dst series.Series) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return f(c, dst)
	}
}

// leafOfOrd locates the leaf (by directory position) holding the record
// with global ordinal ord, given each leaf's starting ordinal.
func leafOfOrd(bases []int, ord int) int {
	return sort.Search(len(bases), func(i int) bool { return bases[i] > ord }) - 1
}

// InsertRec is one pre-summarized insert record: the partition layer
// writes the raw dataset bytes once, assigns global arrival-order
// positions, and routes these to the owning partition's index.
type InsertRec struct {
	// Key is the series' invSAX key; Pos its ordinal in the dataset file.
	Key summary.Key
	Pos int64
	// Raw holds the encoded series bytes; required when materialized.
	Raw []byte
}

// readRawAt fetches the series at ordinal pos from a raw dataset file,
// verifying the encoded bytes against the CRC sidecar when one is present —
// a rotted raw record surfaces as storage.ErrCorruptData, never as a wrong
// distance.
func readRawAt(f storage.File, sums *storage.RecordSums, seriesLen int, pos int64, dst series.Series) error {
	sz := series.EncodedSize(seriesLen)
	buf := make([]byte, sz)
	if n, err := f.ReadAt(buf, pos*int64(sz)); n != sz {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("core: raw series %d: %w", pos, err)
	}
	if sums != nil {
		if err := sums.Verify(pos, buf); err != nil {
			return fmt.Errorf("core: raw series %d: %w", pos, err)
		}
	}
	series.DecodeInto(buf, dst)
	return nil
}

// attachRawSums attaches the raw-dataset CRC sidecar for a checksummed
// index: the externally owned handle when the caller supplied one
// (owned=false), or the index's own. A fresh build writes the sidecar from
// scratch (an existing one may describe a replaced dataset); an open reuses
// the persisted sidecar, reconciling it against the raw file — or rebuilds
// it when missing (legacy index upgraded in place).
func attachRawSums(opt *Options, raw storage.File, fresh bool) (sums *storage.RecordSums, owned bool, err error) {
	if !opt.Checksums {
		return nil, false, nil
	}
	if opt.RawSums != nil {
		return opt.RawSums, false, nil
	}
	recSize := series.EncodedSize(opt.S.Params().SeriesLen)
	if !fresh {
		sums, err = storage.OpenRecordSums(opt.FS, opt.RawName, recSize)
	}
	if fresh || errors.Is(err, storage.ErrNotExist) {
		sums, err = storage.BuildRecordSums(opt.FS, opt.RawName, recSize)
		if err != nil {
			return nil, false, fmt.Errorf("core: building raw sidecar: %w", err)
		}
		return sums, true, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("core: opening raw sidecar: %w", err)
	}
	// The raw file may have grown past the sidecar's last flush (crash
	// between a raw append and the sidecar flush); backfill from the
	// fsynced raw bytes.
	size, err := raw.Size()
	if err != nil {
		return nil, false, err
	}
	if err := sums.Reconcile(raw, size/int64(recSize)); err != nil {
		return nil, false, fmt.Errorf("core: reconciling raw sidecar: %w", err)
	}
	return sums, true, nil
}
