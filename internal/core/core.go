// Package core implements Coconut, the paper's contribution: data series
// indexes built bottom-up over SORTABLE summarizations (invSAX — z-order
// interleaved SAX bits).
//
// Both variants share the same pipeline (§4): one sequential pass over the
// raw file computes each series' invSAX key, the (key, position[, raw])
// records are externally sorted under the memory budget, and the index is
// bulk-loaded from the sorted stream:
//
//   - Coconut-Trie (Algorithm 2) groups the sorted records into an
//     iSAX-style prefix trie whose leaves are written contiguously
//     (insertBottomUp + CompactSubtree — realized here as the equivalent
//     recursive partitioning of the sorted key range along interleaved
//     bits, which yields exactly the maximal prefix-aligned leaf groups).
//   - Coconut-Tree (Algorithm 3) feeds the sorted stream into the
//     UB-tree-style B+-tree bulk loader: a balanced, contiguous index whose
//     leaves are packed to the configured fill factor.
//
// The "-Full" (materialized) variants carry the raw series through the sort
// and into the leaves; the plain variants store only (key, position) and
// fetch raw data from the dataset file at query time.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// Variant selects the bottom-up index layout.
type Variant int

// Variants.
const (
	// Tree is Coconut-Tree: median-split balanced B+-tree (the paper's
	// recommended design).
	Tree Variant = iota
	// Trie is Coconut-Trie: prefix-split bottom-up trie.
	Trie
)

func (v Variant) String() string {
	if v == Trie {
		return "Coconut-Trie"
	}
	return "Coconut-Tree"
}

// Options configures a build.
type Options struct {
	// FS hosts the index files and the raw dataset file.
	FS storage.FS
	// Name is the base name for index files.
	Name string
	// S fixes the summarization scheme.
	S *summary.Summarizer
	// RawName is the dataset file in raw binary format.
	RawName string
	// Variant picks Coconut-Tree or Coconut-Trie.
	Variant Variant
	// Materialized stores raw series inside the index ("-Full" variants).
	Materialized bool
	// LeafCap is the records-per-leaf capacity (paper: 2000).
	LeafCap int
	// FillFactor packs bulk-loaded Tree leaves to this fraction (default 1:
	// "as compactly as possible"; lower it to leave room for updates).
	FillFactor float64
	// MemBudgetBytes is the memory budget M for sorting and buffering.
	MemBudgetBytes int64
	// Workers is the number of concurrent workers used by the bulk-load
	// external sort (0 means runtime.NumCPU()). The built index is
	// byte-identical for any value.
	Workers int
	// QueryWorkers is the fan-out of a SINGLE query: the SIMS lower-bound
	// computation and the candidate-verification scan are sharded across
	// this many goroutines (0 means runtime.GOMAXPROCS(0); the effective
	// count is clamped to the work available, never degenerating to 1).
	// ExactSearch returns identical (Pos, Dist) for any value; only the
	// Visited* counters and the I/O interleaving vary, so experiments that
	// compare I/O traces pin QueryWorkers to 1.
	QueryWorkers int
	// Fanout is the B+-tree internal fan-out (Tree variant, default 64).
	Fanout int
	// ApproxWindow caps how many records around the query's sort position
	// a NON-materialized approximate search fetches from the raw file
	// (scaled by radius+1) — the paper's "all data series in a specific
	// radius from this specific point ... usually a disk page" (§4.3).
	// Materialized indexes scan whole leaves instead (the raw data is
	// already there). Default 32.
	ApproxWindow int
}

func (o *Options) validate() error {
	switch {
	case o.FS == nil:
		return errors.New("core: nil FS")
	case o.Name == "":
		return errors.New("core: empty name")
	case o.S == nil:
		return errors.New("core: nil summarizer")
	case o.RawName == "":
		return errors.New("core: empty raw file name")
	case o.LeafCap < 2:
		return errors.New("core: leaf capacity must be at least 2")
	}
	if o.MemBudgetBytes <= 0 {
		o.MemBudgetBytes = 64 << 20
	}
	if o.FillFactor <= 0 || o.FillFactor > 1 {
		o.FillFactor = 1
	}
	if o.Fanout < 2 {
		o.Fanout = 64
	}
	if o.ApproxWindow <= 0 {
		o.ApproxWindow = 32
	}
	return nil
}

// recordSize returns the sort/leaf record size for the configuration.
func (o *Options) recordSize() int {
	n := summary.KeySize + 8
	if o.Materialized {
		n += series.EncodedSize(o.S.Params().SeriesLen)
	}
	return n
}

// Result is a search answer.
type Result struct {
	// Pos is the ordinal of the answer in the raw file (-1 when empty).
	Pos int64
	// Dist is the Euclidean distance to the query.
	Dist float64
	// VisitedRecords counts series whose true distance was computed
	// (Figure 9f).
	VisitedRecords int64
	// VisitedLeaves counts leaf pages read.
	VisitedLeaves int64
}

// encodeRecord packs (key, pos[, raw series]) into dst.
func encodeRecord(dst []byte, key summary.Key, pos int64, raw []byte) {
	copy(dst, key[:])
	binary.LittleEndian.PutUint64(dst[summary.KeySize:], uint64(pos))
	if raw != nil {
		copy(dst[summary.KeySize+8:], raw)
	}
}

// decodeRecord unpacks a record; raw aliases rec's storage when present.
func decodeRecord(rec []byte, materialized bool) (key summary.Key, pos int64, raw []byte) {
	copy(key[:], rec[:summary.KeySize])
	pos = int64(binary.LittleEndian.Uint64(rec[summary.KeySize:]))
	if materialized {
		raw = rec[summary.KeySize+8:]
	}
	return key, pos, raw
}

// summarizeStream adapts the raw dataset file into a stream of sort records
// — phase one of Algorithms 2 and 3 (lines 2-8): read each series, compute
// invSAX, emit (invSAX, position[, raw]).
type summarizeStream struct {
	opt   *Options
	r     *series.Reader
	buf   series.Series
	rec   []byte
	avail []byte // unread tail of rec
	pos   int64
	done  bool
}

func newSummarizeStream(opt *Options, raw storage.File) *summarizeStream {
	p := opt.S.Params()
	return &summarizeStream{
		opt: opt,
		r:   series.NewReader(storage.NewSequentialReader(raw, 0, -1, 0), p.SeriesLen),
		buf: make(series.Series, p.SeriesLen),
		rec: make([]byte, opt.recordSize()),
	}
}

func (s *summarizeStream) Read(p []byte) (int, error) {
	if len(s.avail) == 0 {
		if s.done {
			return 0, io.EOF
		}
		if err := s.r.NextInto(s.buf); err != nil {
			if errors.Is(err, io.EOF) {
				s.done = true
				return 0, io.EOF
			}
			return 0, err
		}
		key, err := s.opt.S.KeyOf(s.buf)
		if err != nil {
			return 0, err
		}
		var raw []byte
		if s.opt.Materialized {
			raw = series.AppendEncode(nil, s.buf)
		}
		encodeRecord(s.rec, key, s.pos, raw)
		s.pos++
		s.avail = s.rec
	}
	n := copy(p, s.avail)
	s.avail = s.avail[n:]
	return n, nil
}

// errEmptyIndex is returned when searching an index with no records.
var errEmptyIndex = errors.New("core: index is empty")

// readRawAt fetches the series at ordinal pos from a raw dataset file.
func readRawAt(f storage.File, seriesLen int, pos int64, dst series.Series) error {
	sz := series.EncodedSize(seriesLen)
	buf := make([]byte, sz)
	if n, err := f.ReadAt(buf, pos*int64(sz)); n != sz {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("core: raw series %d: %w", pos, err)
	}
	series.DecodeInto(buf, dst)
	return nil
}
