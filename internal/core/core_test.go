package core

import (
	"math"
	"testing"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

const (
	tLen   = 64
	tCount = 700
)

func tSummarizer(t *testing.T) *summary.Summarizer {
	t.Helper()
	s, err := summary.NewSummarizer(summary.Params{SeriesLen: tLen, Segments: 8, CardBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fixtureFS(t *testing.T) (*storage.MemFS, []series.Series) {
	t.Helper()
	fs := storage.NewMemFS()
	gen := dataset.NewRandomWalk()
	if _, err := dataset.WriteFile(fs, "raw", gen, tCount, tLen, 42); err != nil {
		t.Fatal(err)
	}
	return fs, dataset.Generate(gen, tCount, tLen, 42)
}

func baseOptions(t *testing.T, fs storage.FS, materialized bool) Options {
	return Options{
		FS:             fs,
		Name:           "cx",
		S:              tSummarizer(t),
		RawName:        "raw",
		Materialized:   materialized,
		LeafCap:        20,
		MemBudgetBytes: 1 << 20,
	}
}

func bruteForce1NN(q series.Series, data []series.Series) float64 {
	best := math.Inf(1)
	for _, d := range data {
		dist, _ := series.ED(q, d)
		if dist < best {
			best = dist
		}
	}
	return best
}

func TestBuildTreeShape(t *testing.T) {
	for _, mat := range []bool{false, true} {
		fs, _ := fixtureFS(t)
		ix, err := BuildTree(baseOptions(t, fs, mat))
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		if ix.Count() != tCount {
			t.Fatalf("Count = %d", ix.Count())
		}
		// Full fill factor: leaves completely packed (bar the last).
		if fill := ix.AvgLeafFill(); fill < 0.9 {
			t.Fatalf("Coconut-Tree fill %v — the paper's headline is ~97%%", fill)
		}
		wantLeaves := (tCount + 19) / 20
		if got := ix.NumLeaves(); got != wantLeaves {
			t.Fatalf("NumLeaves = %d, want %d", got, wantLeaves)
		}
		if ix.SizeBytes() == 0 {
			t.Fatal("empty index file")
		}
		// The sorted temp file must be cleaned up.
		if fs.Exists("cx.sorted") {
			t.Fatal("sorted temp file left behind")
		}
	}
}

func TestBuildTreeSortedOrderAligned(t *testing.T) {
	fs, _ := fixtureFS(t)
	ix, err := BuildTree(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	// keys must be sorted and aligned with tree scan order.
	for i := 1; i < len(ix.keys); i++ {
		if ix.keys[i].Less(ix.keys[i-1]) {
			t.Fatal("summary array not sorted")
		}
	}
	scanned, err := ix.ScanAllPositions()
	if err != nil {
		t.Fatal(err)
	}
	if len(scanned) != len(ix.positions) {
		t.Fatalf("scan has %d records, array %d", len(scanned), len(ix.positions))
	}
	for i := range scanned {
		if scanned[i] != ix.positions[i] {
			t.Fatalf("summary array misaligned at %d", i)
		}
	}
	// Every position 0..N-1 appears exactly once.
	seen := make(map[int64]bool, len(scanned))
	for _, p := range scanned {
		if seen[p] {
			t.Fatalf("duplicate position %d", p)
		}
		seen[p] = true
	}
	if len(seen) != tCount {
		t.Fatalf("positions missing: %d of %d", len(seen), tCount)
	}
}

func TestTreeConstructionIsSequential(t *testing.T) {
	fs, _ := fixtureFS(t)
	before := fs.Stats().Snapshot()
	ix, err := BuildTree(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	delta := fs.Stats().Snapshot().Sub(before)
	// Bottom-up bulk loading: O(N/B) sequential I/O, seeks only per stream.
	if delta.Seeks() > 50 {
		t.Fatalf("Coconut-Tree build should be sequential, got %+v", delta)
	}
}

func TestTreeApproxSearch(t *testing.T) {
	for _, mat := range []bool{false, true} {
		fs, data := fixtureFS(t)
		ix, err := BuildTree(baseOptions(t, fs, mat))
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		qs := dataset.Queries(dataset.NewRandomWalk(), 10, tLen, 7)
		for _, q := range qs {
			res, err := ix.ApproxSearch(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Pos < 0 || res.Pos >= tCount {
				t.Fatalf("approx pos %d out of range", res.Pos)
			}
			want, _ := series.ED(q, data[res.Pos])
			if math.Abs(want-res.Dist) > 1e-9 {
				t.Fatalf("approx distance %v != recomputed %v", res.Dist, want)
			}
			// Radius improves (or equals) the approximate answer.
			res5, err := ix.ApproxSearch(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			if res5.Dist > res.Dist+1e-12 {
				t.Fatalf("radius 5 answer worse than radius 0: %v vs %v", res5.Dist, res.Dist)
			}
			if res5.VisitedLeaves <= res.VisitedLeaves {
				t.Fatal("radius should visit more leaves")
			}
		}
	}
}

func TestTreeExactMatchesBruteForce(t *testing.T) {
	for _, mat := range []bool{false, true} {
		fs, data := fixtureFS(t)
		ix, err := BuildTree(baseOptions(t, fs, mat))
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		qs := dataset.Queries(dataset.NewRandomWalk(), 15, tLen, 9)
		for qi, q := range qs {
			want := bruteForce1NN(q, data)
			res, err := ix.ExactSearch(q, 1)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Dist-want) > 1e-9 {
				t.Fatalf("mat=%v query %d: %v != brute force %v", mat, qi, res.Dist, want)
			}
		}
	}
}

func TestTreeExactPrunes(t *testing.T) {
	fs, _ := fixtureFS(t)
	ix, err := BuildTree(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	qs := dataset.Queries(dataset.NewRandomWalk(), 10, tLen, 11)
	var visited int64
	for _, q := range qs {
		res, err := ix.ExactSearch(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		visited += res.VisitedRecords
	}
	if avg := float64(visited) / 10; avg >= tCount {
		t.Fatalf("SIMS visited %v on average — no pruning", avg)
	}
}

func TestTreeMemberFound(t *testing.T) {
	fs, data := fixtureFS(t)
	ix, err := BuildTree(baseOptions(t, fs, true))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	res, err := ix.ExactSearch(data[55], 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist > 1e-9 || res.Pos != 55 {
		t.Fatalf("member not found: pos=%d dist=%v", res.Pos, res.Dist)
	}
}

func TestTreeInsertBatch(t *testing.T) {
	for _, mat := range []bool{false, true} {
		fs, data := fixtureFS(t)
		opt := baseOptions(t, fs, mat)
		ix, err := BuildTree(opt)
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		batch := dataset.Generate(dataset.NewSeismic(), 60, tLen, 777)
		if err := ix.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		if ix.Count() != tCount+60 {
			t.Fatalf("Count = %d", ix.Count())
		}
		// Newly inserted series must be findable at distance 0.
		res, err := ix.ExactSearch(batch[13], 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist > 1e-9 {
			t.Fatalf("inserted series not found: %v", res.Dist)
		}
		if res.Pos < tCount {
			t.Fatalf("inserted series at stale position %d", res.Pos)
		}
		// Old data still reachable.
		want := bruteForce1NN(data[5], append(append([]series.Series{}, data...), batch...))
		res, err = ix.ExactSearch(data[5], 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Dist-want) > 1e-9 {
			t.Fatalf("post-insert exact search wrong: %v vs %v", res.Dist, want)
		}
	}
}

func TestBuildTrieShape(t *testing.T) {
	for _, mat := range []bool{false, true} {
		fs, _ := fixtureFS(t)
		ix, err := BuildTrie(baseOptions(t, fs, mat))
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		if ix.Count() != tCount {
			t.Fatalf("Count = %d", ix.Count())
		}
		if err := ix.Trie().CheckInvariants(8); err != nil {
			t.Fatal(err)
		}
		if ix.NumLeaves() == 0 || ix.SizeBytes() == 0 {
			t.Fatal("trie index empty")
		}
		// Leaf counts must cover all records.
		var total int64
		for _, l := range ix.leaves {
			total += l.Count
			if l.Count > int64(ix.opt.LeafCap) {
				// Only allowed for fully-identical-key degenerate leaves.
				t.Logf("oversized leaf with %d records", l.Count)
			}
		}
		if total != tCount {
			t.Fatalf("leaves hold %d records", total)
		}
		if fs.Exists("cx.sorted") {
			t.Fatal("sorted temp file left behind")
		}
	}
}

func TestTrieLeavesAreContiguousAndSorted(t *testing.T) {
	fs, _ := fixtureFS(t)
	ix, err := BuildTrie(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	// Pages are allocated strictly in leaf order with no gaps.
	var next int64
	for _, l := range ix.leaves {
		if l.PageStart != next {
			t.Fatalf("leaf pages not contiguous: start %d, want %d", l.PageStart, next)
		}
		next += l.PageNum
	}
	// Records across leaves follow global key order.
	var prev summary.Key
	first := true
	for _, l := range ix.leaves {
		recs, err := ix.readLeafRecords(l)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			key, _, _ := decodeRecord(rec, false)
			if !first && key.Less(prev) {
				t.Fatal("leaf records out of global z-order")
			}
			prev, first = key, false
		}
	}
}

func TestTrieApproxAndExact(t *testing.T) {
	for _, mat := range []bool{false, true} {
		fs, data := fixtureFS(t)
		ix, err := BuildTrie(baseOptions(t, fs, mat))
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		qs := dataset.Queries(dataset.NewRandomWalk(), 12, tLen, 13)
		for qi, q := range qs {
			res, err := ix.ApproxSearch(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := series.ED(q, data[res.Pos])
			if math.Abs(want-res.Dist) > 1e-9 {
				t.Fatalf("approx distance mismatch")
			}
			ex, err := ix.ExactSearch(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			bf := bruteForce1NN(q, data)
			if math.Abs(ex.Dist-bf) > 1e-9 {
				t.Fatalf("mat=%v query %d: exact %v != brute force %v", mat, qi, ex.Dist, bf)
			}
		}
	}
}

func TestTrieFillLowerThanTree(t *testing.T) {
	// The paper's reason to prefer Coconut-Tree: prefix-aligned leaves
	// cannot be packed as densely as median-split leaves.
	fs, _ := fixtureFS(t)
	trieIx, err := BuildTrie(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer trieIx.Close()
	fs2, _ := fixtureFS(t)
	treeIx, err := BuildTree(baseOptions(t, fs2, false))
	if err != nil {
		t.Fatal(err)
	}
	defer treeIx.Close()
	if trieIx.AvgLeafFill() >= treeIx.AvgLeafFill() {
		t.Fatalf("trie fill %v should be below tree fill %v",
			trieIx.AvgLeafFill(), treeIx.AvgLeafFill())
	}
}

func TestSmallMemoryBudgetStillCorrect(t *testing.T) {
	// Tiny sort budget: many runs + multi-pass merge, same result.
	fs, data := fixtureFS(t)
	opt := baseOptions(t, fs, false)
	opt.MemBudgetBytes = 8 << 10
	ix, err := BuildTree(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 17)[0]
	want := bruteForce1NN(q, data)
	res, err := ix.ExactSearch(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist-want) > 1e-9 {
		t.Fatalf("limited-memory build broken: %v vs %v", res.Dist, want)
	}
}

func TestEmptyDataset(t *testing.T) {
	fs := storage.NewMemFS()
	dataset.WriteFile(fs, "raw", dataset.NewRandomWalk(), 0, tLen, 1)
	ix, err := BuildTree(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Count() != 0 {
		t.Fatal("expected empty index")
	}
	q := dataset.Queries(dataset.NewRandomWalk(), 1, tLen, 2)[0]
	if _, err := ix.ApproxSearch(q, 0); err == nil {
		t.Fatal("expected error on empty index")
	}
	tx, err := BuildTrie(baseOptions(t, fs, false))
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	if _, err := tx.ApproxSearch(q, 0); err == nil {
		t.Fatal("expected error on empty trie")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := BuildTree(Options{}); err == nil {
		t.Fatal("expected validation error")
	}
	fs := storage.NewMemFS()
	if _, err := BuildTree(Options{FS: fs, Name: "x", S: tSummarizer(t), RawName: "missing", LeafCap: 10}); err == nil {
		t.Fatal("expected error for missing raw file")
	}
}

func TestFillFactorControlsPacking(t *testing.T) {
	fs, _ := fixtureFS(t)
	opt := baseOptions(t, fs, false)
	opt.FillFactor = 0.5
	ix, err := BuildTree(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	fill := ix.AvgLeafFill()
	if fill < 0.4 || fill > 0.6 {
		t.Fatalf("fill factor 0.5 gave %v", fill)
	}
}
