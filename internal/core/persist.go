package core

import (
	"errors"
	"fmt"

	"github.com/coconut-db/coconut/internal/bptree"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/trie"
)

// This file is the durable-lifecycle glue for the core index variants:
// every Build ends by committing a versioned, checksummed manifest
// (internal/manifest) describing the on-device layout, and the Open paths
// reconstruct a queryable handle from the manifest plus the index files
// alone — the raw dataset is opened for query-time fetches but never
// re-read to rebuild the index.

// LoadManifest reads the manifest of a persisted index. It is exposed so
// the public API and the CLI can adopt stored parameters (summarization,
// leaf capacity, dataset file) before constructing open options.
func LoadManifest(fs storage.FS, name string) (*manifest.Manifest, error) {
	m, err := manifest.Load(fs, name)
	if err != nil {
		return nil, fmt.Errorf("core: loading manifest for %q: %w", name, err)
	}
	return m, nil
}

// checkOpenConfig runs the loud config-mismatch detection shared by the
// Open paths: the caller's summarization scheme, materialization, and
// dataset file must match the stored manifest exactly.
func checkOpenConfig(opt *Options, m *manifest.Manifest, want manifest.Variant) error {
	if err := m.CheckVariant(want); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := m.CheckParams(opt.S.Params(), opt.Materialized, opt.RawName); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	// The leaf capacity shapes the on-device page geometry; the stored
	// value is the only one that can interpret the pages, so a conflicting
	// caller value is as fatal as a summarization mismatch. (The public
	// API and the CLI adopt the stored value for unset fields before
	// reaching here.)
	if opt.LeafCap != m.LeafCap {
		return fmt.Errorf("core: %w: leaf capacity %d, stored index was built with %d",
			manifest.ErrConfigMismatch, opt.LeafCap, m.LeafCap)
	}
	return nil
}

// treeManifest assembles the manifest for a TreeIndex from the live
// B+-tree geometry.
func treeManifest(opt Options, g bptree.Geometry) *manifest.Manifest {
	p := opt.S.Params()
	return &manifest.Manifest{
		Variant:      manifest.VariantTree,
		SeriesLen:    p.SeriesLen,
		Segments:     p.Segments,
		CardBits:     p.CardBits,
		Materialized: opt.Materialized,
		LeafCap:      g.LeafCap,
		RawName:      opt.RawName,
		Count:        g.Count,
		Checksums:    opt.Checksums,
		Tree: &manifest.TreeLayout{
			RecordSize: g.RecordSize,
			KeyLen:     g.KeyLen,
			LeafCap:    g.LeafCap,
			Fanout:     g.Fanout,
			FillFactor: opt.FillFactor,
			NumLeaves:  g.NumLeaves,
			NextPage:   g.NextPage,
		},
	}
}

// writeManifest commits the tree's manifest (called with the meta already
// saved, so manifest and B+-tree meta describe the same state).
func (ix *TreeIndex) writeManifest() error {
	return manifest.Commit(ix.opt.FS, ix.opt.Name, treeManifest(ix.opt, ix.bt.Geometry()))
}

// checkTreeGeometry cross-checks the reopened B+-tree against the
// manifest. A disagreement in the build-time shape (record size, key
// length, leaf capacity, fan-out) means the directory holds files from
// different builds and is unusable. The mutable fields (leaf count, page
// cursor, record count) may legitimately be NEWER in the meta than in the
// manifest: Sync commits the meta first, so a crash between the two
// atomic commits leaves that exact state. checkTreeGeometry reports it as
// stale=true and OpenTree heals by recommitting the manifest from the
// live tree — both commits are individually atomic, so every reachable
// crash state reopens.
func checkTreeGeometry(opt Options, m *manifest.Manifest, g bptree.Geometry) (stale bool, err error) {
	t := m.Tree
	if t == nil {
		return false, fmt.Errorf("core: %w: tree manifest without tree layout", manifest.ErrCorruptManifest)
	}
	if g.RecordSize != t.RecordSize || g.KeyLen != t.KeyLen || g.LeafCap != t.LeafCap ||
		g.Fanout != t.Fanout {
		return false, fmt.Errorf("core: %w: B+-tree meta does not match manifest (mixed build)",
			manifest.ErrCorruptManifest)
	}
	if g.RecordSize != opt.recordSize() {
		return false, fmt.Errorf("core: %w: stored record size %d, configuration implies %d",
			manifest.ErrCorruptManifest, g.RecordSize, opt.recordSize())
	}
	// Inserts only grow the tree, so a meta that is BEHIND the manifest
	// cannot come from the commit ordering above — reject it.
	if g.Count < m.Count || g.NumLeaves < t.NumLeaves || g.NextPage < t.NextPage {
		return false, fmt.Errorf("core: %w: B+-tree meta is older than the manifest",
			manifest.ErrCorruptManifest)
	}
	stale = g.NumLeaves != t.NumLeaves || g.NextPage != t.NextPage || g.Count != m.Count
	return stale, nil
}

// writeManifest commits the trie's manifest from its leaf directory.
func (ix *TrieIndex) writeManifest() error {
	p := ix.opt.S.Params()
	leaves := make([]manifest.TrieLeaf, len(ix.leaves))
	for i, l := range ix.leaves {
		leaves[i] = manifest.TrieLeaf{Count: l.Count, PageStart: l.PageStart, PageNum: l.PageNum}
	}
	m := &manifest.Manifest{
		Variant:      manifest.VariantTrie,
		SeriesLen:    p.SeriesLen,
		Segments:     p.Segments,
		CardBits:     p.CardBits,
		Materialized: ix.opt.Materialized,
		LeafCap:      ix.opt.LeafCap,
		RawName:      ix.opt.RawName,
		Count:        ix.count,
		Checksums:    ix.opt.Checksums,
		Trie:         &manifest.TrieLayout{Pages: ix.nextPage, Leaves: leaves},
	}
	return manifest.Commit(ix.opt.FS, ix.opt.Name, m)
}

// OpenTrie reopens a previously built Coconut-Trie from its manifest and
// contiguous leaf file. The sorted summary array is reloaded by one
// sequential pass over the leaves, and the in-memory trie structure — a
// pure function of the sorted keys and the leaf capacity — is rebuilt and
// cross-checked leaf by leaf against the manifest's directory. The raw
// dataset file is opened for query-time fetches but never read here.
func OpenTrie(opt Options) (*TrieIndex, error) {
	opt.Variant = Trie
	if err := opt.validate(); err != nil {
		return nil, err
	}
	m, err := LoadManifest(opt.FS, opt.Name)
	if err != nil {
		return nil, err
	}
	if err := checkOpenConfig(&opt, m, manifest.VariantTrie); err != nil {
		return nil, err
	}
	if m.Trie == nil {
		return nil, fmt.Errorf("core: %w: trie manifest without trie layout", manifest.ErrCorruptManifest)
	}
	// The checksummed-block layout is a property of the stored bytes;
	// adopt the manifest's flag (see OpenTree).
	opt.Checksums = m.Checksums
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}
	inner, err := opt.FS.Open(opt.Name + ".leaves")
	if err != nil {
		raw.Close()
		return nil, err
	}
	lf := storage.File(inner)
	if opt.Checksums {
		if lf, err = storage.OpenChecksumFile(inner); err != nil {
			inner.Close()
			raw.Close()
			// A corrupt structure in a manifest-referenced artifact is
			// typed as both the stored-bytes failure and the broken
			// manifest promise, matching the LSM run convention.
			if errors.Is(err, storage.ErrCorruptData) {
				err = fmt.Errorf("%w: %w", manifest.ErrCorruptManifest, err)
			}
			return nil, fmt.Errorf("core: open trie leaf file: %w", err)
		}
	}
	tr, err := trie.New(opt.S, opt.LeafCap)
	if err != nil {
		raw.Close()
		lf.Close()
		return nil, err
	}
	ix := &TrieIndex{opt: opt, tr: tr, leafFile: lf, rawFile: raw, leafOrd: make(map[*trie.Node]int)}
	if ix.rawSums, ix.ownSums, err = attachRawSums(&opt, raw, false); err != nil {
		ix.closeAll()
		return nil, err
	}

	// One sequential pass over the persisted leaves reloads the sorted
	// summary array (keys live in the leaf records; the raw file is not
	// touched).
	for li, l := range m.Trie.Leaves {
		recs, err := ix.readLeafPages(l.PageStart, l.PageNum)
		if err != nil {
			ix.closeAll()
			return nil, err
		}
		if int64(len(recs)) != l.Count {
			ix.closeAll()
			return nil, fmt.Errorf("core: %w: leaf %d holds %d records, manifest says %d",
				manifest.ErrCorruptManifest, li, len(recs), l.Count)
		}
		for _, rec := range recs {
			key, pos, _ := decodeRecord(rec, false)
			ix.keys = append(ix.keys, key)
			ix.positions = append(ix.positions, pos)
		}
	}
	ix.count = int64(len(ix.keys))
	if ix.count != m.Count {
		ix.closeAll()
		return nil, fmt.Errorf("core: %w: leaves hold %d records, manifest says %d",
			manifest.ErrCorruptManifest, ix.count, m.Count)
	}
	for i := 1; i < len(ix.keys); i++ {
		if ix.keys[i].Less(ix.keys[i-1]) {
			ix.closeAll()
			return nil, fmt.Errorf("core: %w: leaf records out of key order", manifest.ErrCorruptManifest)
		}
	}

	// Rebuild the in-memory trie and verify it reproduces the persisted
	// leaf directory exactly — the structure is deterministic, so any
	// disagreement means the manifest and the leaf file are from
	// different builds.
	ix.buildStructure()
	if len(ix.leaves) != len(m.Trie.Leaves) || ix.nextPage != m.Trie.Pages {
		ix.closeAll()
		return nil, fmt.Errorf("core: %w: rebuilt trie has %d leaves over %d pages, manifest says %d over %d",
			manifest.ErrCorruptManifest, len(ix.leaves), ix.nextPage, len(m.Trie.Leaves), m.Trie.Pages)
	}
	for i, l := range ix.leaves {
		want := m.Trie.Leaves[i]
		if l.Count != want.Count || l.PageStart != want.PageStart || l.PageNum != want.PageNum {
			ix.closeAll()
			return nil, fmt.Errorf("core: %w: rebuilt leaf %d (%d records at page %d+%d) does not match manifest (%d at %d+%d)",
				manifest.ErrCorruptManifest, i, l.Count, l.PageStart, l.PageNum,
				want.Count, want.PageStart, want.PageNum)
		}
	}
	return ix, nil
}
