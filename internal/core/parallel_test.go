package core

import (
	"testing"
)

// TestBuildTreeDeterministicAcrossWorkers: the bulk-load output (tree shape
// and every search answer) must not depend on the sort's worker count.
func TestBuildTreeDeterministicAcrossWorkers(t *testing.T) {
	build := func(workers int) (*TreeIndex, func()) {
		fs, _ := fixtureFS(t)
		opt := baseOptions(t, fs, false)
		opt.Workers = workers
		// Small budget so the sort actually spills to multi-run merging.
		opt.MemBudgetBytes = 64 * int64(opt.recordSize())
		ix, err := BuildTree(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ix, func() { ix.Close() }
	}
	ix1, close1 := build(1)
	defer close1()
	ix8, close8 := build(8)
	defer close8()

	if ix1.Count() != ix8.Count() || ix1.NumLeaves() != ix8.NumLeaves() {
		t.Fatalf("shape differs: workers=1 (%d series, %d leaves) vs workers=8 (%d series, %d leaves)",
			ix1.Count(), ix1.NumLeaves(), ix8.Count(), ix8.NumLeaves())
	}
	_, data := fixtureFS(t)
	for qi := 0; qi < 20; qi++ {
		q := data[qi*31%len(data)].Clone()
		e1, err := ix1.ExactSearch(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		e8, err := ix8.ExactSearch(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if e1.Pos != e8.Pos || e1.Dist != e8.Dist {
			t.Fatalf("query %d: answers differ: %+v vs %+v", qi, e1, e8)
		}
	}
}
