package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"github.com/coconut-db/coconut/internal/extsort"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/shard"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
	"github.com/coconut-db/coconut/internal/trie"
	"github.com/coconut-db/coconut/internal/window"
)

// TrieIndex is Coconut-Trie (Algorithm 2): an iSAX-style prefix trie built
// bottom-up from sorted invSAX keys, with contiguous leaves.
//
// The construction realizes insertBottomUp + CompactSubtree as a recursive
// partition of the sorted key range along interleaved bit positions: a
// range that fits in a leaf becomes a (maximal, prefix-aligned) leaf —
// exactly the groups compaction would produce — and larger ranges split on
// the next interleaved bit, which extends one segment's prefix by one bit.
//
// A TrieIndex is immutable after BuildTrie and therefore safe for any
// number of concurrent queries on one handle: all query state (scratch
// series, leaf buffers) is allocated per call, and the exact-search
// verification scan shards across Options.QueryWorkers. Close is the one
// mutation; the handle lock makes it wait for in-flight queries.
type TrieIndex struct {
	opt Options
	// qmu is the handle lock: queries hold it shared, Close exclusively.
	qmu sync.RWMutex
	// closed makes Close idempotent (see TreeIndex.closed).
	closed   bool
	tr       *trie.Trie
	leaves   []*trie.Node // leaf nodes in sorted (z-)order
	leafOrd  map[*trie.Node]int
	leafFile storage.File
	rawFile  storage.File
	count    int64
	// rawSums verifies raw-dataset reads when checksums are on; ownSums
	// marks it as this index's own rather than the partition layer's.
	rawSums *storage.RecordSums
	ownSums bool
	// keys/positions: in-memory sorted summary array (SIMS state).
	keys      []summary.Key
	positions []int64
	// leafStart[i] is the index into keys of leaf i's first record.
	leafStart []int
	nextPage  int64
}

func bitAt(k summary.Key, i int) int {
	return int(k[i>>3]>>(7-uint(i&7))) & 1
}

// prefixAt converts the first L interleaved bits of key into per-segment
// (Syms, Bits) prefixes: bit position p belongs to segment p mod w.
func prefixAt(s *summary.Summarizer, key summary.Key, L int) (summary.SAX, []uint8) {
	p := s.Params()
	w, b := p.Segments, p.CardBits
	bits := make([]uint8, w)
	for j := 0; j < w; j++ {
		n := L / w
		if L%w > j {
			n++
		}
		if n > b {
			n = b
		}
		bits[j] = uint8(n)
	}
	sax := summary.Deinterleave(key, w, b)
	syms := make(summary.SAX, w)
	for j := 0; j < w; j++ {
		shift := uint(b) - uint(bits[j])
		syms[j] = (sax[j] >> shift) << shift
	}
	return syms, bits
}

// BuildTrie runs the Coconut-Trie pipeline: summarize -> external sort ->
// bottom-up trie construction -> contiguous leaf write-out.
func BuildTrie(opt Options) (*TrieIndex, error) {
	opt.Variant = Trie
	if err := opt.validate(); err != nil {
		return nil, err
	}
	raw, err := opt.FS.Open(opt.RawName)
	if err != nil {
		return nil, err
	}

	sortedName := opt.Name + ".sorted"
	if err := sortRecords(&opt, raw, sortedName); err != nil {
		raw.Close()
		return nil, fmt.Errorf("core: sorting summarizations: %w", err)
	}

	tr, err := trie.New(opt.S, opt.LeafCap)
	if err != nil {
		raw.Close()
		return nil, err
	}
	inner, err := opt.FS.Create(opt.Name + ".leaves")
	if err != nil {
		raw.Close()
		return nil, err
	}
	lf := storage.File(inner)
	if opt.Checksums {
		// One checksum block per trie page: every leaf read verifies the
		// exact pages it touches.
		if lf, err = storage.CreateChecksumFile(inner, 4+opt.recordSize()*opt.LeafCap); err != nil {
			inner.Close()
			raw.Close()
			return nil, err
		}
	}
	ix := &TrieIndex{opt: opt, tr: tr, leafFile: lf, rawFile: raw, leafOrd: make(map[*trie.Node]int)}

	// Pass over the sorted stream: load the sorted summary array.
	rr, err := extsort.OpenRecords(opt.FS, sortedName, opt.recordSize(), 0)
	if err != nil {
		ix.closeAll()
		return nil, err
	}
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			rr.Close()
			ix.closeAll()
			return nil, err
		}
		key, pos, _ := decodeRecord(rec, false)
		ix.keys = append(ix.keys, key)
		ix.positions = append(ix.positions, pos)
	}
	rr.Close()
	ix.count = int64(len(ix.keys))

	// insertBottomUp + CompactSubtree: group by the first w bits (the iSAX
	// root fan-out), then recursively partition.
	ix.buildStructure()

	// Contiguous leaf write-out: one sequential pass over the sorted file.
	if err := ix.writeLeaves(sortedName); err != nil {
		ix.closeAll()
		return nil, err
	}
	_ = opt.FS.Remove(sortedName)
	if ix.rawSums, ix.ownSums, err = attachRawSums(&opt, raw, true); err != nil {
		ix.closeAll()
		return nil, err
	}
	// The manifest commit is the durability point: from here on the index
	// can be reopened with OpenTrie without touching the raw dataset.
	if err := ix.writeManifest(); err != nil {
		ix.closeAll()
		return nil, err
	}
	return ix, nil
}

// buildStructure (re)builds the in-memory trie over the sorted key array:
// top-level groups share their full first-bit-per-segment prefix (the iSAX
// root fan-out), and each group partitions recursively along interleaved
// bits. It is a pure function of (keys, LeafCap, summarization), which is
// what lets OpenTrie reconstruct the exact build-time structure from the
// persisted leaves and cross-check it against the manifest.
func (ix *TrieIndex) buildStructure() {
	p := ix.opt.S.Params()
	totalBits := p.Segments * p.CardBits
	lo := 0
	for lo < len(ix.keys) {
		hi := lo
		rootPrefix := ix.keys[lo]
		for hi < len(ix.keys) && summary.CommonPrefixBits(rootPrefix, ix.keys[hi], p.Segments) == p.Segments {
			hi++
		}
		n := ix.buildNode(lo, hi, p.Segments, totalBits)
		ix.tr.Root[ix.tr.RootKey(summary.Deinterleave(rootPrefix, p.Segments, p.CardBits))] = n
		lo = hi
	}
}

func (ix *TrieIndex) closeAll() {
	ix.leafFile.Close()
	ix.rawFile.Close()
}

// buildNode recursively builds the subtree for keys[lo:hi], whose members
// share at least `depth` interleaved prefix bits.
func (ix *TrieIndex) buildNode(lo, hi, depth, totalBits int) *trie.Node {
	s := ix.opt.S
	if hi-lo <= ix.opt.LeafCap || depth >= totalBits {
		// Maximal leaf: tighten the prefix to the members' true common
		// prefix (what CompactSubtree ends up with).
		common := summary.CommonPrefixBits(ix.keys[lo], ix.keys[hi-1], totalBits)
		if common < depth {
			common = depth
		}
		syms, bits := prefixAt(s, ix.keys[lo], common)
		leaf := &trie.Node{Syms: syms, Bits: bits, Leaf: true, Count: int64(hi - lo)}
		pages := int64((hi - lo + ix.opt.LeafCap - 1) / ix.opt.LeafCap)
		if pages == 0 {
			pages = 1
		}
		leaf.PageStart = ix.nextPage
		leaf.PageNum = pages
		ix.nextPage += pages
		ix.leafOrd[leaf] = len(ix.leaves)
		ix.leafStart = append(ix.leafStart, lo)
		ix.leaves = append(ix.leaves, leaf)
		return leaf
	}
	// Advance to the first bit position that actually divides the range
	// (path compression — chains of single-child nodes merge away).
	d := depth
	for d < totalBits {
		mid := lo + sort.Search(hi-lo, func(i int) bool { return bitAt(ix.keys[lo+i], d) == 1 })
		if mid > lo && mid < hi {
			syms, bits := prefixAt(s, ix.keys[lo], depth)
			n := &trie.Node{Syms: syms, Bits: bits, Count: int64(hi - lo)}
			n.Children = []*trie.Node{
				ix.buildNode(lo, mid, d+1, totalBits),
				ix.buildNode(mid, hi, d+1, totalBits),
			}
			return n
		}
		d++
	}
	// All remaining bits identical: one oversized leaf.
	return ix.buildNode(lo, hi, totalBits, totalBits)
}

func (ix *TrieIndex) pageSize() int64 {
	return int64(4 + ix.opt.recordSize()*ix.opt.LeafCap)
}

// writeLeaves streams the sorted record file into page-framed, contiguous
// leaves — the large sequential write that replaces the state of the art's
// scattered allocations.
func (ix *TrieIndex) writeLeaves(sortedName string) error {
	rr, err := extsort.OpenRecords(ix.opt.FS, sortedName, ix.opt.recordSize(), 0)
	if err != nil {
		return err
	}
	defer rr.Close()
	w := storage.NewSequentialWriter(ix.leafFile, 0, 0)
	recSize := ix.opt.recordSize()
	pageBytes := int(ix.pageSize())
	for _, leaf := range ix.leaves {
		buf := make([]byte, leaf.PageNum*ix.pageSize())
		cnt := int(leaf.Count)
		buf[0] = byte(cnt)
		buf[1] = byte(cnt >> 8)
		buf[2] = byte(cnt >> 16)
		buf[3] = byte(cnt >> 24)
		off := 4
		inPage, page := 0, 0
		for i := 0; i < cnt; i++ {
			rec, err := rr.Next()
			if err != nil {
				return fmt.Errorf("core: sorted stream ended early: %w", err)
			}
			if inPage == ix.opt.LeafCap {
				page++
				off = page*pageBytes + 4
				inPage = 0
			}
			copy(buf[off:], rec)
			off += recSize
			inPage++
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The manifest committed after this write-out references these pages;
	// they must be on stable storage first.
	return ix.leafFile.Sync()
}

// readLeafRecords loads one leaf's raw record bytes.
func (ix *TrieIndex) readLeafRecords(leaf *trie.Node) ([][]byte, error) {
	return ix.readLeafPages(leaf.PageStart, leaf.PageNum)
}

// readLeafPages loads the records of a leaf given its page extent — the
// form OpenTrie uses before any trie.Node exists.
func (ix *TrieIndex) readLeafPages(pageStart, pageNum int64) ([][]byte, error) {
	buf := make([]byte, pageNum*ix.pageSize())
	if n, err := ix.leafFile.ReadAt(buf, pageStart*ix.pageSize()); n != len(buf) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// A leaf extent the manifest references but the file does not
			// hold is corruption (truncation), not an I/O condition.
			err = fmt.Errorf("truncated leaf file: %w", storage.ErrCorruptData)
		}
		return nil, fmt.Errorf("core: read trie leaf: %w", err)
	}
	cnt := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
	// The header is not covered by the manifest checksum; bound it by the
	// leaf's page capacity so a flipped bit fails loudly instead of
	// walking the decode loop off the end of the buffer.
	if int64(cnt) > pageNum*int64(ix.opt.LeafCap) {
		return nil, fmt.Errorf("core: %w: %w: leaf header claims %d records in %d pages of %d",
			manifest.ErrCorruptManifest, storage.ErrCorruptData, cnt, pageNum, ix.opt.LeafCap)
	}
	recSize := ix.opt.recordSize()
	pageBytes := int(ix.pageSize())
	out := make([][]byte, 0, cnt)
	off := 4
	inPage, page := 0, 0
	for i := 0; i < cnt; i++ {
		if inPage == ix.opt.LeafCap {
			page++
			off = page*pageBytes + 4
			inPage = 0
		}
		out = append(out, buf[off:off+recSize])
		off += recSize
		inPage++
	}
	return out, nil
}

// Count returns the number of indexed series.
func (ix *TrieIndex) Count() int64 { return ix.count }

// NumLeaves returns the number of trie leaves.
func (ix *TrieIndex) NumLeaves() int { return len(ix.leaves) }

// AvgLeafFill returns mean leaf occupancy.
func (ix *TrieIndex) AvgLeafFill() float64 {
	if len(ix.leaves) == 0 {
		return 0
	}
	var total int64
	for _, l := range ix.leaves {
		total += l.Count
	}
	return float64(total) / float64(int64(len(ix.leaves))*int64(ix.opt.LeafCap))
}

// SizeBytes returns the on-device index footprint.
func (ix *TrieIndex) SizeBytes() int64 {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	size, err := ix.leafFile.Size()
	if err != nil {
		return 0
	}
	return size
}

// Trie exposes the underlying structure (read-only).
func (ix *TrieIndex) Trie() *trie.Trie { return ix.tr }

// Close releases file handles, waiting for in-flight queries. It is
// idempotent and safe to call concurrently with cancelled queries: shards
// abandoned by a cancelled fan-out may still touch the files afterwards,
// and their reads fail into slots the query never looks at.
func (ix *TrieIndex) Close() error {
	ix.qmu.Lock()
	defer ix.qmu.Unlock()
	if ix.closed {
		return nil
	}
	ix.closed = true
	err1 := ix.leafFile.Close()
	err2 := ix.rawFile.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// recordSquaredDistance computes the true SQUARED distance from q to a
// leaf record (see TreeIndex.recordSquaredDistance for the squared-space
// contract).
func (ix *TrieIndex) recordSquaredDistance(q series.Series, rec []byte, scratch series.Series) (int64, float64, error) {
	_, pos, raw := decodeRecord(rec, ix.opt.Materialized)
	if raw != nil {
		series.DecodeInto(raw, scratch)
	} else if err := readRawAt(ix.rawFile, ix.rawSums, ix.opt.S.Params().SeriesLen, pos, scratch); err != nil {
		return 0, 0, err
	}
	sq, err := series.SquaredED(q, scratch)
	if err != nil {
		return 0, 0, err
	}
	return pos, sq, nil
}

// ApproxSearch examines the ApproxWindow*(radius+1) records surrounding
// the query key's insertion position in the sorted summary array, fetching
// them in lower-bound order with early stop. The window depends only on
// the sorted record multiset, so the answer is identical across layouts
// (see internal/window). Safe for concurrent use.
func (ix *TrieIndex) ApproxSearch(q series.Series, radius int) (Result, error) {
	return ix.ApproxSearchCtx(context.Background(), q, radius)
}

// ApproxSearchCtx is ApproxSearch with cancellation: the candidate fetch
// loop observes ctx between records and returns ctx.Err() without a
// partial answer.
func (ix *TrieIndex) ApproxSearchCtx(ctx context.Context, q series.Series, radius int) (Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	res, err := ix.approxSearch(ctx, q, radius)
	return finishResult(res), err
}

// approxSearch is the internal form of ApproxSearch; res.Dist holds the
// SQUARED best distance.
func (ix *TrieIndex) approxSearch(ctx context.Context, q series.Series, radius int) (Result, error) {
	res := Result{Pos: -1, Dist: math.Inf(1)}
	if ix.count == 0 {
		return res, ErrEmptyIndex
	}
	aw, err := ix.approxWindow(q, radius)
	if err != nil {
		return res, err
	}
	half := ix.opt.ApproxWindow * (radius + 1) / 2
	cands := window.Merge(aw.Below, aw.Above, half)
	pos, sq, visited, err := window.Eval(q, cands, CtxFetch(ctx, aw.Fetch))
	res.Pos, res.Dist = pos, sq
	res.VisitedRecords = visited
	res.VisitedLeaves = aw.Leaves
	return res, err
}

// ApproxWindowCands exposes the trie's window contribution to the
// partition layer's cross-partition approximate search (see
// TreeIndex.ApproxWindowCands for the locking contract). An empty index
// contributes nothing.
func (ix *TrieIndex) ApproxWindowCands(q series.Series, radius int) (ApproxWindow, error) {
	return ix.ApproxWindowCandsCtx(context.Background(), q, radius)
}

// ApproxWindowCandsCtx is ApproxWindowCands with cancellation: the
// returned window's Fetch observes ctx between records.
func (ix *TrieIndex) ApproxWindowCandsCtx(ctx context.Context, q series.Series, radius int) (ApproxWindow, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	if ix.count == 0 {
		return ApproxWindow{}, nil
	}
	aw, err := ix.approxWindow(q, radius)
	aw.Fetch = CtxFetch(ctx, aw.Fetch)
	return aw, err
}

// approxWindow collects the trie's window contribution: the trailing and
// leading half-windows around the query key's insertion position in the
// sorted summary array. Leaves counts the leaf pages the window ordinals
// span.
func (ix *TrieIndex) approxWindow(q series.Series, radius int) (ApproxWindow, error) {
	var aw ApproxWindow
	key, err := ix.opt.S.KeyOf(q)
	if err != nil {
		return aw, err
	}
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return aw, err
	}
	p := ix.opt.S.Params()
	half := ix.opt.ApproxWindow * (radius + 1) / 2
	ins := sort.Search(len(ix.keys), func(i int) bool { return !ix.keys[i].Less(key) })
	lo, hi := ins-half, ins+half
	if lo < 0 {
		lo = 0
	}
	if hi > len(ix.keys) {
		hi = len(ix.keys)
	}
	saxScratch := make(summary.SAX, p.Segments)
	for i := lo; i < hi; i++ {
		sax := summary.DeinterleaveInto(ix.keys[i], p.CardBits, saxScratch)
		c := window.Cand{Key: ix.keys[i], Pos: ix.positions[i], LB: ix.opt.S.MinDistSqPAAToSAX(qPAA, sax), Ord: i}
		if i < ins {
			aw.Below = append(aw.Below, c)
		} else {
			aw.Above = append(aw.Above, c)
		}
	}
	if lo < hi {
		aw.Leaves = int64(leafOfOrd(ix.leafStart, hi-1) - leafOfOrd(ix.leafStart, lo) + 1)
	}
	aw.Fetch = ix.windowFetch()
	return aw, nil
}

// windowFetch returns the per-query window candidate fetcher (see
// TreeIndex.windowFetch): raw-dataset reads when non-materialized, cached
// leaf-page reads when materialized.
func (ix *TrieIndex) windowFetch() window.FetchFunc {
	seriesLen := ix.opt.S.Params().SeriesLen
	if !ix.opt.Materialized {
		return func(c window.Cand, dst series.Series) error {
			return readRawAt(ix.rawFile, ix.rawSums, seriesLen, c.Pos, dst)
		}
	}
	cache := make(map[int][][]byte)
	return func(c window.Cand, dst series.Series) error {
		li := leafOfOrd(ix.leafStart, c.Ord)
		recs, ok := cache[li]
		if !ok {
			var err error
			recs, err = ix.readLeafRecords(ix.leaves[li])
			if err != nil {
				return err
			}
			cache[li] = recs
		}
		_, _, raw := decodeRecord(recs[c.Ord-ix.leafStart[li]], true)
		series.DecodeInto(raw, dst)
		return nil
	}
}

// ExactSearch runs the SIMS algorithm over the trie: approximate seed,
// parallel lower bounds from the in-memory sorted summaries, then a
// skip-sequential candidate scan sharded across Options.QueryWorkers
// (leaves when materialized, raw file in position order otherwise). Safe
// for concurrent use; (Pos, Dist) is identical for any worker count.
func (ix *TrieIndex) ExactSearch(q series.Series, radius int) (Result, error) {
	return ix.ExactSearchCtx(context.Background(), q, radius)
}

// ExactSearchCtx is ExactSearch with cancellation: the verification scan
// observes ctx at leaf/candidate granularity and returns ctx.Err() without
// a partial answer.
func (ix *TrieIndex) ExactSearchCtx(ctx context.Context, q series.Series, radius int) (Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	res, err := ix.exactSearch(ctx, q, radius)
	return finishResult(res), err
}

// exactSearch runs the SIMS pipeline in squared space (see
// TreeIndex.exactSearch).
func (ix *TrieIndex) exactSearch(ctx context.Context, q series.Series, radius int) (Result, error) {
	res, err := ix.approxSearch(ctx, q, radius)
	if err != nil {
		return res, err
	}
	var bound shard.BSF
	bound.Init(res.Dist)
	return ix.exactVerify(ctx, q, res, &bound)
}

// exactVerify is the SIMS verification phase with an externally supplied
// shared bound (see TreeIndex.exactVerify).
func (ix *TrieIndex) exactVerify(ctx context.Context, q series.Series, res Result, bound *shard.BSF) (Result, error) {
	qPAA, err := ix.opt.S.PAA(q, nil)
	if err != nil {
		return res, err
	}
	mindists := ix.opt.S.MinDistsToKeys(qPAA, ix.keys, ix.opt.QueryWorkers)

	if ix.opt.Materialized {
		return ix.simsOverLeaves(ctx, q, mindists, res, bound)
	}
	return ix.simsOverRawFile(ctx, q, mindists, res, bound)
}

// ExactVerify runs only the verification phase against an externally
// computed seed and a shared cross-partition bound (see
// TreeIndex.ExactVerify). Returned Result is SQUARED, counters cover this
// index's verification work only.
func (ix *TrieIndex) ExactVerify(q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (Result, error) {
	return ix.ExactVerifyCtx(context.Background(), q, seedPos, seedSq, bound)
}

// ExactVerifyCtx is ExactVerify with cancellation.
func (ix *TrieIndex) ExactVerifyCtx(ctx context.Context, q series.Series, seedPos int64, seedSq float64, bound *shard.BSF) (Result, error) {
	ix.qmu.RLock()
	defer ix.qmu.RUnlock()
	res := Result{Pos: seedPos, Dist: seedSq}
	if ix.count == 0 {
		return res, nil
	}
	return ix.exactVerify(ctx, q, res, bound)
}

// simsOverLeaves shards the materialized verification scan over contiguous
// runs of trie leaves; see TreeIndex.simsOverLeaves for the determinism
// contract.
func (ix *TrieIndex) simsOverLeaves(ctx context.Context, q series.Series, mindists []float64, res Result, bound *shard.BSF) (Result, error) {
	workers := shard.Resolve(ix.opt.QueryWorkers, len(ix.leaves))
	pos, dist, vr, vl, err := shard.ScanReduceCtx(ctx, workers, len(ix.leaves), res.Pos, res.Dist, func(r shard.Range, local *shard.Outcome, cancelled func() bool) error {
		scratch := make(series.Series, ix.opt.S.Params().SeriesLen)
		for li := r.Lo; li < r.Hi; li++ {
			if cancelled() {
				return nil
			}
			leaf := ix.leaves[li]
			start := ix.leafStart[li]
			end := start + int(leaf.Count)
			any := false
			for i := start; i < end; i++ {
				if mindists[i] < local.Dist && !bound.Prunes(mindists[i]) {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			recs, err := ix.readLeafRecords(leaf)
			if err != nil {
				return err
			}
			local.VisitedLeaves++
			for ri, rec := range recs {
				if mindists[start+ri] >= local.Dist || bound.Prunes(mindists[start+ri]) {
					continue
				}
				pos, sq, err := ix.recordSquaredDistance(q, rec, scratch)
				if err != nil {
					return err
				}
				local.VisitedRecords++
				if sq < local.Dist {
					local.Dist, local.Pos = sq, pos
					bound.Lower(sq)
				}
			}
		}
		return nil
	})
	return applyScan(res, pos, dist, vr, vl), err
}

// simsOverRawFile shards the non-materialized position-ordered raw scan;
// see TreeIndex.simsOverRawFile.
func (ix *TrieIndex) simsOverRawFile(ctx context.Context, q series.Series, mindists []float64, res Result, bound *shard.BSF) (Result, error) {
	type cand struct {
		pos int64
		lb  float64
	}
	cands := make([]cand, 0, 256)
	for i, lb := range mindists {
		if lb < res.Dist && !bound.Prunes(lb) {
			cands = append(cands, cand{ix.positions[i], lb})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].pos < cands[b].pos })
	seriesLen := ix.opt.S.Params().SeriesLen
	workers := shard.Resolve(ix.opt.QueryWorkers, len(cands))
	pos, dist, vr, vl, err := shard.ScanReduceCtx(ctx, workers, len(cands), res.Pos, res.Dist, func(r shard.Range, local *shard.Outcome, cancelled func() bool) error {
		scratch := make(series.Series, seriesLen)
		for i := r.Lo; i < r.Hi; i++ {
			if cancelled() {
				return nil
			}
			c := cands[i]
			if c.lb >= local.Dist || bound.Prunes(c.lb) {
				continue
			}
			if err := readRawAt(ix.rawFile, ix.rawSums, seriesLen, c.pos, scratch); err != nil {
				return err
			}
			local.VisitedRecords++
			sq, ok := series.SquaredEDEarlyAbandon(q, scratch, local.Dist)
			if !ok {
				continue
			}
			if sq < local.Dist {
				local.Dist, local.Pos = sq, c.pos
				bound.Lower(sq)
			}
		}
		return nil
	})
	return applyScan(res, pos, dist, vr, vl), err
}
