// Package runblock is the block-compressed physical layout of sorted LSM
// run files. Sortable invSAX summaries make a run a sorted key file, and
// sorted keys are extremely delta-compressible: consecutive keys share long
// prefixes (front-coding strips them) and positions cluster (zigzag varint
// deltas shrink them). Records are packed into fixed-arity logical blocks,
// each carrying its first key, its record count, and its own CRC; a tiny
// directory (first key + file offset per block) plus a fixed-size footer at
// the end of the file let a reader binary-search the directory and decode
// only the blocks a probe actually touches — so the resident cost of an
// open run is the directory, not the keys.
//
// The format is append-only friendly: blocks stream out first, the
// directory and footer last, so the writer never patches earlier bytes and
// composes with storage.ChecksumFile (appends and whole-block rewrites
// only). Every decode validates counts, offsets, prefix arithmetic, varint
// bounds, CRCs, and the refined (key, encoded position) sort order, and
// reports violations as errors wrapping storage.ErrCorruptData — hostile
// bytes must never panic or decode into silently wrong keys.
package runblock

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"

	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/storage/blockcache"
	"github.com/coconut-db/coconut/internal/summary"
)

// RecordSize is the logical record: interleaved key + little-endian
// position — identical to the uncompressed run record the LSM sorts.
const RecordSize = summary.KeySize + 8

// DefaultBlockRecords is the default block arity: 512 records ≈ 12 KiB of
// logical payload per block, inside the 4–16 KiB target that keeps one
// block one device-page-ish read while amortizing per-block overhead.
const DefaultBlockRecords = 512

// maxBlockRecords bounds the arity a footer may declare, so hostile bytes
// cannot make a reader allocate unbounded decode buffers.
const maxBlockRecords = 1 << 20

const (
	headerSize = 16
	footerSize = 88
	// blockHeadSize prefixes each physical block: payload length + CRC.
	blockHeadSize = 8
	// dirEntSize is one directory entry: first key, offset, record count.
	dirEntSize = summary.KeySize + 8 + 4
)

var (
	magicHeader = [4]byte{'C', 'C', 'R', 'B'}
	magicFooter = [8]byte{'C', 'C', 'R', 'B', 'e', 'n', 'd', '1'}
)

const version = 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt types every decode failure as on-disk corruption.
func errCorrupt(format string, args ...any) error {
	return fmt.Errorf("runblock: "+format+": %w", append(args, storage.ErrCorruptData)...)
}

// recLess is the refined order every run is sorted under: key bytes first,
// ties broken by the lexicographic order of the position's little-endian
// encoding (reversing the bytes of the integer compares exactly that).
func recLess(ak summary.Key, ap int64, bk summary.Key, bp int64) bool {
	if c := ak.Compare(bk); c != 0 {
		return c < 0
	}
	return bits.ReverseBytes64(uint64(ap)) < bits.ReverseBytes64(uint64(bp))
}

// Block is one decoded block: parallel key/position arrays, the unit the
// cache holds and query paths scan.
type Block struct {
	Keys []summary.Key
	Pos  []int64
}

// sizeBytes is the cache accounting charge for a decoded block.
func (b *Block) sizeBytes() int64 {
	return int64(len(b.Keys))*RecordSize + 64
}

// Writer streams sorted records into the block-compressed layout. Add in
// refined order, then Finish exactly once; the caller owns f (Finish does
// not sync or close it).
type Writer struct {
	f            storage.File
	w            *storage.SequentialWriter
	blockRecords int

	scratch  []byte // current block payload
	blockN   int
	firstKey summary.Key
	prevKey  summary.Key
	prevPos  int64

	dir    []byte // accumulated directory entries
	blocks int64
	count  int64
	minKey summary.Key
	maxKey summary.Key

	started  bool
	finished bool
	err      error
}

// NewWriter returns a writer emitting blocks of blockRecords records
// (DefaultBlockRecords when <= 0) to f, starting at offset 0.
func NewWriter(f storage.File, blockRecords int) *Writer {
	if blockRecords <= 0 {
		blockRecords = DefaultBlockRecords
	}
	if blockRecords > maxBlockRecords {
		blockRecords = maxBlockRecords
	}
	return &Writer{f: f, w: storage.NewSequentialWriter(f, 0, 0), blockRecords: blockRecords}
}

func (w *Writer) writeHeader() error {
	var h [headerSize]byte
	copy(h[:4], magicHeader[:])
	h[4] = version
	binary.LittleEndian.PutUint32(h[8:12], uint32(w.blockRecords))
	_, err := w.w.Write(h[:])
	return err
}

// Add appends one record. Records must arrive in refined order.
func (w *Writer) Add(key summary.Key, pos int64) error {
	if w.err != nil {
		return w.err
	}
	if w.finished {
		return fmt.Errorf("runblock: Add after Finish")
	}
	if !w.started {
		if err := w.writeHeader(); err != nil {
			w.err = err
			return err
		}
		w.started = true
		w.minKey = key
	} else if recLess(key, pos, w.prevKey, w.prevPos) {
		w.err = fmt.Errorf("runblock: records out of order")
		return w.err
	}
	if w.blockN == 0 {
		w.firstKey = key
		w.scratch = append(w.scratch[:0], key[:]...)
		w.scratch = binary.LittleEndian.AppendUint64(w.scratch, uint64(pos))
	} else {
		// Front-code the key against its predecessor: shared byte prefix
		// stripped, trailing zero bytes stripped (sparse configurations
		// leave most of the 128 bits zero).
		prefix := 0
		for prefix < summary.KeySize && key[prefix] == w.prevKey[prefix] {
			prefix++
		}
		end := summary.KeySize
		for end > prefix && key[end-1] == 0 {
			end--
		}
		w.scratch = append(w.scratch, byte(prefix), byte(end-prefix))
		w.scratch = append(w.scratch, key[prefix:end]...)
		delta := uint64(pos) - uint64(w.prevPos)
		w.scratch = binary.AppendVarint(w.scratch, int64(delta))
	}
	w.prevKey, w.prevPos = key, pos
	w.maxKey = key
	w.blockN++
	w.count++
	if w.blockN == w.blockRecords {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if w.blockN == 0 {
		return nil
	}
	var ent [dirEntSize]byte
	copy(ent[:summary.KeySize], w.firstKey[:])
	binary.LittleEndian.PutUint64(ent[summary.KeySize:], uint64(w.w.Offset()))
	binary.LittleEndian.PutUint32(ent[summary.KeySize+8:], uint32(w.blockN))
	w.dir = append(w.dir, ent[:]...)

	var head [blockHeadSize]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(w.scratch)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.Checksum(w.scratch, crcTable))
	if _, err := w.w.Write(head[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		w.err = err
		return err
	}
	w.blocks++
	w.blockN = 0
	w.scratch = w.scratch[:0]
	return nil
}

// Count returns the records added so far.
func (w *Writer) Count() int64 { return w.count }

// Finish flushes the tail block and writes the directory and footer. The
// file is complete (but not synced) when it returns.
func (w *Writer) Finish() error {
	if w.err != nil {
		return w.err
	}
	if w.finished {
		return nil
	}
	if !w.started {
		if err := w.writeHeader(); err != nil {
			w.err = err
			return err
		}
		w.started = true
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	dirOff := w.w.Offset()
	if _, err := w.w.Write(w.dir); err != nil {
		w.err = err
		return err
	}
	var ft [footerSize]byte
	binary.LittleEndian.PutUint64(ft[0:8], uint64(dirOff))
	binary.LittleEndian.PutUint64(ft[8:16], uint64(len(w.dir)))
	binary.LittleEndian.PutUint64(ft[16:24], uint64(w.count))
	binary.LittleEndian.PutUint64(ft[24:32], uint64(w.blocks))
	copy(ft[32:48], w.minKey[:])
	copy(ft[48:64], w.maxKey[:])
	binary.LittleEndian.PutUint32(ft[64:68], uint32(w.blockRecords))
	binary.LittleEndian.PutUint32(ft[68:72], crc32.Checksum(w.dir, crcTable))
	binary.LittleEndian.PutUint32(ft[72:76], crc32.Checksum(ft[:72], crcTable))
	copy(ft[80:88], magicFooter[:])
	if _, err := w.w.Write(ft[:]); err != nil {
		w.err = err
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	w.finished = true
	return nil
}

// dirEnt is one in-memory directory entry.
type dirEnt struct {
	firstKey summary.Key
	off      int64 // physical offset of the block head
	count    int   // records in the block
	startRec int64 // global ordinal of the block's first record
}

// Reader is an open block-compressed run: the decoded directory plus the
// file handle, reading blocks on demand through an optional shared cache.
// The directory is immutable after OpenReader, so a Reader is safe for
// concurrent use (the underlying File must support concurrent ReadAt, as
// every storage.File here does).
type Reader struct {
	f            storage.File
	cache        *blockcache.Cache
	cacheID      uint64
	blockRecords int
	count        int64
	minKey       summary.Key
	maxKey       summary.Key
	dir          []dirEnt
	dirOff       int64
}

// OpenReader validates the footer and directory of f and returns a reader.
// The reader owns f (Close closes it). cache may be nil, in which case
// every Block call decodes from the file.
func OpenReader(f storage.File, cache *blockcache.Cache) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < headerSize+footerSize {
		return nil, errCorrupt("file too small (%d bytes)", size)
	}
	var hd [headerSize]byte
	if err := readFull(f, hd[:], 0); err != nil {
		return nil, err
	}
	if [4]byte(hd[:4]) != magicHeader {
		return nil, errCorrupt("bad header magic")
	}
	if hd[4] != version {
		return nil, errCorrupt("unsupported version %d", hd[4])
	}
	for _, b := range hd[5:8] {
		if b != 0 {
			return nil, errCorrupt("nonzero header reserved bytes")
		}
	}
	for _, b := range hd[12:16] {
		if b != 0 {
			return nil, errCorrupt("nonzero header reserved bytes")
		}
	}
	var ft [footerSize]byte
	if err := readFull(f, ft[:], size-footerSize); err != nil {
		return nil, err
	}
	if [8]byte(ft[80:88]) != magicFooter {
		return nil, errCorrupt("bad footer magic")
	}
	for _, b := range ft[76:80] {
		if b != 0 {
			return nil, errCorrupt("nonzero footer reserved bytes")
		}
	}
	if crc32.Checksum(ft[:72], crcTable) != binary.LittleEndian.Uint32(ft[72:76]) {
		return nil, errCorrupt("footer checksum mismatch")
	}
	r := &Reader{
		f:            f,
		cache:        cache,
		blockRecords: int(binary.LittleEndian.Uint32(ft[64:68])),
		count:        int64(binary.LittleEndian.Uint64(ft[16:24])),
		dirOff:       int64(binary.LittleEndian.Uint64(ft[0:8])),
	}
	copy(r.minKey[:], ft[32:48])
	copy(r.maxKey[:], ft[48:64])
	dirBytes := int64(binary.LittleEndian.Uint64(ft[8:16]))
	blocks := int64(binary.LittleEndian.Uint64(ft[24:32]))
	if r.blockRecords < 1 || r.blockRecords > maxBlockRecords {
		return nil, errCorrupt("implausible block arity %d", r.blockRecords)
	}
	if int(binary.LittleEndian.Uint32(hd[8:12])) != r.blockRecords {
		return nil, errCorrupt("header and footer disagree on block arity")
	}
	if r.count < 0 || blocks < 0 || blocks > (size/blockHeadSize)+1 {
		return nil, errCorrupt("implausible block count %d", blocks)
	}
	if dirBytes != blocks*dirEntSize {
		return nil, errCorrupt("directory is %d bytes, want %d for %d blocks", dirBytes, blocks*dirEntSize, blocks)
	}
	if r.dirOff < headerSize || r.dirOff+dirBytes+footerSize != size {
		return nil, errCorrupt("directory does not abut footer")
	}
	want := (r.count + int64(r.blockRecords) - 1) / int64(r.blockRecords)
	if blocks != want {
		return nil, errCorrupt("%d blocks for %d records of arity %d", blocks, r.count, r.blockRecords)
	}
	raw := make([]byte, dirBytes)
	if err := readFull(f, raw, r.dirOff); err != nil {
		return nil, err
	}
	if crc32.Checksum(raw, crcTable) != binary.LittleEndian.Uint32(ft[68:72]) {
		return nil, errCorrupt("directory checksum mismatch")
	}
	r.dir = make([]dirEnt, blocks)
	var startRec int64
	prevEnd := int64(headerSize)
	for i := range r.dir {
		ent := raw[int64(i)*dirEntSize:]
		e := &r.dir[i]
		copy(e.firstKey[:], ent[:summary.KeySize])
		e.off = int64(binary.LittleEndian.Uint64(ent[summary.KeySize:]))
		e.count = int(binary.LittleEndian.Uint32(ent[summary.KeySize+8:]))
		e.startRec = startRec
		if e.count < 1 || e.count > r.blockRecords {
			return nil, errCorrupt("block %d claims %d records", i, e.count)
		}
		if e.off < prevEnd || e.off >= r.dirOff {
			return nil, errCorrupt("block %d offset %d out of range", i, e.off)
		}
		if i > 0 && r.dir[i-1].firstKey.Compare(e.firstKey) > 0 {
			return nil, errCorrupt("directory keys out of order at block %d", i)
		}
		prevEnd = e.off + blockHeadSize
		startRec += int64(e.count)
	}
	if startRec != r.count {
		return nil, errCorrupt("directory holds %d records, footer says %d", startRec, r.count)
	}
	if r.count > 0 {
		if r.dir[0].firstKey != r.minKey {
			return nil, errCorrupt("footer min key does not match directory")
		}
		if r.minKey.Compare(r.maxKey) > 0 {
			return nil, errCorrupt("footer key range inverted")
		}
	}
	if cache != nil {
		r.cacheID = cache.NewFileID()
	}
	return r, nil
}

func readFull(f storage.File, p []byte, off int64) error {
	n, err := f.ReadAt(p, off)
	if n == len(p) {
		return nil
	}
	if err == nil {
		err = errCorrupt("short read at %d", off)
	}
	return err
}

// Count returns the run's record count.
func (r *Reader) Count() int64 { return r.count }

// NumBlocks returns the number of blocks.
func (r *Reader) NumBlocks() int { return len(r.dir) }

// MinKey returns the run's smallest key (zero when empty).
func (r *Reader) MinKey() summary.Key { return r.minKey }

// MaxKey returns the run's largest key (zero when empty).
func (r *Reader) MaxKey() summary.Key { return r.maxKey }

// BlockStart returns the global ordinal of block b's first record.
func (r *Reader) BlockStart(b int) int64 { return r.dir[b].startRec }

// Close drops the reader's cached blocks and closes the file.
func (r *Reader) Close() error {
	if r.cache != nil {
		r.cache.DropFile(r.cacheID)
	}
	return r.f.Close()
}

// physEnd returns the exclusive physical end offset of block b.
func (r *Reader) physEnd(b int) int64 {
	if b+1 < len(r.dir) {
		return r.dir[b+1].off
	}
	return r.dirOff
}

// Block returns block b, consulting the shared cache first. The returned
// block is shared and must not be mutated.
func (r *Reader) Block(b int) (*Block, error) {
	if r.cache != nil {
		if v, ok := r.cache.Get(r.cacheID, int64(b)); ok {
			return v.(*Block), nil
		}
	}
	blk, err := r.decodeBlock(b)
	if err != nil {
		return nil, err
	}
	if r.cache != nil {
		r.cache.Put(r.cacheID, int64(b), blk, blk.sizeBytes())
	}
	return blk, nil
}

// decodeBlock reads and decodes block b straight from the file.
func (r *Reader) decodeBlock(b int) (*Block, error) {
	e := &r.dir[b]
	raw := make([]byte, r.physEnd(b)-e.off)
	if len(raw) < blockHeadSize {
		return nil, errCorrupt("block %d region too small", b)
	}
	if err := readFull(r.f, raw, e.off); err != nil {
		return nil, err
	}
	payloadLen := binary.LittleEndian.Uint32(raw[0:4])
	if int(payloadLen) != len(raw)-blockHeadSize {
		return nil, errCorrupt("block %d payload length %d, region holds %d", b, payloadLen, len(raw)-blockHeadSize)
	}
	payload := raw[blockHeadSize:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(raw[4:8]) {
		return nil, errCorrupt("block %d checksum mismatch", b)
	}
	blk := &Block{
		Keys: make([]summary.Key, 0, e.count),
		Pos:  make([]int64, 0, e.count),
	}
	var prevKey summary.Key
	var prevPos int64
	for i := 0; i < e.count; i++ {
		var key summary.Key
		var pos int64
		if i == 0 {
			if len(payload) < RecordSize {
				return nil, errCorrupt("block %d truncated first record", b)
			}
			copy(key[:], payload[:summary.KeySize])
			pos = int64(binary.LittleEndian.Uint64(payload[summary.KeySize:RecordSize]))
			payload = payload[RecordSize:]
			if key != e.firstKey {
				return nil, errCorrupt("block %d first key does not match directory", b)
			}
		} else {
			if len(payload) < 2 {
				return nil, errCorrupt("block %d truncated record %d", b, i)
			}
			prefix, suffix := int(payload[0]), int(payload[1])
			payload = payload[2:]
			if prefix+suffix > summary.KeySize || suffix > len(payload) {
				return nil, errCorrupt("block %d record %d prefix %d + suffix %d out of range", b, i, prefix, suffix)
			}
			copy(key[:prefix], prevKey[:prefix])
			copy(key[prefix:prefix+suffix], payload[:suffix])
			payload = payload[suffix:]
			delta, n := binary.Varint(payload)
			if n <= 0 {
				return nil, errCorrupt("block %d record %d bad position varint", b, i)
			}
			payload = payload[n:]
			pos = int64(uint64(prevPos) + uint64(delta))
			if recLess(key, pos, prevKey, prevPos) {
				return nil, errCorrupt("block %d records out of order at %d", b, i)
			}
		}
		blk.Keys = append(blk.Keys, key)
		blk.Pos = append(blk.Pos, pos)
		prevKey, prevPos = key, pos
	}
	if len(payload) != 0 {
		return nil, errCorrupt("block %d has %d trailing bytes", b, len(payload))
	}
	return blk, nil
}

// blockFor returns the block containing global record ordinal rec.
func (r *Reader) blockFor(rec int64) int {
	lo, hi := 0, len(r.dir)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.dir[mid].startRec <= rec {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Search returns the insertion index of key: the smallest global record
// ordinal i with key <= keys[i] (r.Count() when every key is smaller) —
// the same quantity sort.Search over a whole-run key array yields. It
// decodes at most one block.
func (r *Reader) Search(key summary.Key) (int64, error) {
	if r.count == 0 {
		return 0, nil
	}
	// First block whose first key is >= key.
	lo, hi := 0, len(r.dir)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.dir[mid].firstKey.Less(key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		// Even the global first key is >= key.
		return 0, nil
	}
	// Block lo-1 is the last whose first key is < key: the insertion point
	// is inside it or exactly at its end (== start of block lo).
	b := lo - 1
	blk, err := r.Block(b)
	if err != nil {
		return 0, err
	}
	i, n := 0, len(blk.Keys)
	for i < n {
		mid := (i + n) / 2
		if blk.Keys[mid].Less(key) {
			i = mid + 1
		} else {
			n = mid
		}
	}
	return r.dir[b].startRec + int64(i), nil
}

// Range streams records [lo, hi) in order to fn, decoding only the blocks
// the range touches. Bounds are clamped to [0, Count()].
func (r *Reader) Range(lo, hi int64, fn func(key summary.Key, pos int64) error) error {
	if lo < 0 {
		lo = 0
	}
	if hi > r.count {
		hi = r.count
	}
	if lo >= hi {
		return nil
	}
	for b := r.blockFor(lo); b < len(r.dir); b++ {
		e := &r.dir[b]
		if e.startRec >= hi {
			break
		}
		blk, err := r.Block(b)
		if err != nil {
			return err
		}
		i0, i1 := int64(0), int64(len(blk.Keys))
		if s := lo - e.startRec; s > i0 {
			i0 = s
		}
		if s := hi - e.startRec; s < i1 {
			i1 = s
		}
		for i := i0; i < i1; i++ {
			if err := fn(blk.Keys[i], blk.Pos[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Verify decodes every block in order — bypassing the cache, so an open-
// time verification pass does not evict a live working set — and checks
// the cross-block refined order and the footer's key range. O(1) memory.
func (r *Reader) Verify() error {
	var prevKey summary.Key
	var prevPos int64
	var seen int64
	for b := range r.dir {
		blk, err := r.decodeBlock(b)
		if err != nil {
			return err
		}
		if b > 0 && recLess(blk.Keys[0], blk.Pos[0], prevKey, prevPos) {
			return errCorrupt("blocks %d/%d out of order", b-1, b)
		}
		n := len(blk.Keys)
		prevKey, prevPos = blk.Keys[n-1], blk.Pos[n-1]
		seen += int64(n)
	}
	if seen != r.count {
		return errCorrupt("decoded %d records, footer says %d", seen, r.count)
	}
	if r.count > 0 && prevKey != r.maxKey {
		return errCorrupt("footer max key does not match last block")
	}
	return nil
}
