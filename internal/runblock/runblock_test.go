package runblock

import (
	"errors"
	"math/bits"
	"math/rand"
	"sort"
	"testing"

	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/storage/blockcache"
	"github.com/coconut-db/coconut/internal/summary"
)

type rec struct {
	key summary.Key
	pos int64
}

// genRecords returns n records sorted in refined order, with enough
// duplicate keys and clustered prefixes to exercise front-coding.
func genRecords(t *testing.T, rng *rand.Rand, n int) []rec {
	t.Helper()
	recs := make([]rec, n)
	var base summary.Key
	rng.Read(base[:])
	for i := range recs {
		k := base
		// Perturb a suffix so consecutive keys share long prefixes.
		for j := 10; j < summary.KeySize; j++ {
			k[j] = byte(rng.Intn(256))
		}
		if rng.Intn(8) == 0 && i > 0 {
			k = recs[i-1].key // exact duplicate key, pos breaks the tie
		}
		recs[i] = rec{key: k, pos: int64(rng.Intn(1 << 30))}
		if rng.Intn(64) == 0 {
			rng.Read(base[:]) // occasional regime shift
		}
	}
	sort.Slice(recs, func(a, b int) bool {
		return recLess(recs[a].key, recs[a].pos, recs[b].key, recs[b].pos)
	})
	return recs
}

func writeRun(t *testing.T, fs storage.FS, name string, recs []rec, blockRecords int) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, blockRecords)
	for _, r := range recs {
		if err := w.Add(r.key, r.pos); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 1000} {
		recs := genRecords(t, rng, n)
		fs := storage.NewMemFS()
		writeRun(t, fs, "run", recs, 32)
		f, err := fs.Open("run")
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(f, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r.Count() != int64(n) {
			t.Fatalf("n=%d: Count=%d", n, r.Count())
		}
		if err := r.Verify(); err != nil {
			t.Fatalf("n=%d: Verify: %v", n, err)
		}
		var got []rec
		if err := r.Range(0, r.Count(), func(k summary.Key, p int64) error {
			got = append(got, rec{k, p})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: ranged %d records", n, len(got))
		}
		for i, g := range got {
			if g != recs[i] {
				t.Fatalf("n=%d: record %d = %v, want %v", n, i, g, recs[i])
			}
		}
		if n > 0 {
			if r.MinKey() != recs[0].key || r.MaxKey() != recs[n-1].key {
				t.Fatalf("n=%d: min/max mismatch", n)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSearchMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := genRecords(t, rng, 500)
	keys := make([]summary.Key, len(recs))
	for i, r := range recs {
		keys[i] = r.key
	}
	fs := storage.NewMemFS()
	writeRun(t, fs, "run", recs, 16)
	f, err := fs.Open("run")
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f, blockcache.New(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	check := func(k summary.Key) {
		want := int64(sort.Search(len(keys), func(i int) bool {
			return !keys[i].Less(k)
		}))
		got, err := r.Search(k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Search(%v) = %d, want %d", k, got, want)
		}
	}
	for _, rc := range recs {
		check(rc.key)
	}
	for i := 0; i < 500; i++ {
		var k summary.Key
		rng.Read(k[:])
		check(k)
	}
	var zero, max summary.Key
	for i := range max {
		max[i] = 0xff
	}
	check(zero)
	check(max)
}

func TestRangeWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	recs := genRecords(t, rng, 300)
	fs := storage.NewMemFS()
	writeRun(t, fs, "run", recs, 10)
	f, err := fs.Open("run")
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 200; i++ {
		lo := int64(rng.Intn(320)) - 10
		hi := lo + int64(rng.Intn(50))
		var got []rec
		if err := r.Range(lo, hi, func(k summary.Key, p int64) error {
			got = append(got, rec{k, p})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		clo, chi := lo, hi
		if clo < 0 {
			clo = 0
		}
		if chi > int64(len(recs)) {
			chi = int64(len(recs))
		}
		if chi < clo {
			chi = clo
		}
		if int64(len(got)) != chi-clo {
			t.Fatalf("Range(%d,%d) yielded %d records, want %d", lo, hi, len(got), chi-clo)
		}
		for j, g := range got {
			if g != recs[clo+int64(j)] {
				t.Fatalf("Range(%d,%d) record %d mismatch", lo, hi, j)
			}
		}
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	fs := storage.NewMemFS()
	f, err := fs.Create("run")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := NewWriter(f, 8)
	var a, b summary.Key
	b[0] = 1
	if err := w.Add(b, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(a, 5); err == nil {
		t.Fatal("descending key accepted")
	}
	// Same key with a smaller LE-encoded position must also be rejected:
	// 0x0100 encodes as 00 01 ... which sorts before 0x01's 01 00 ..., so
	// adding 0x01 then 0x0100 is descending in refined order.
	if bits.ReverseBytes64(0x0100) >= bits.ReverseBytes64(0x01) {
		t.Fatal("test premise wrong")
	}
	f2, _ := fs.Create("run2")
	defer f2.Close()
	w2 := NewWriter(f2, 8)
	if err := w2.Add(a, 0x01); err != nil {
		t.Fatal(err)
	}
	if err := w2.Add(a, 0x0100); err == nil {
		t.Fatal("descending refined position accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	recs := genRecords(t, rng, 400)
	fs := storage.NewMemFS()
	writeRun(t, fs, "run", recs, 32)
	clean, err := storage.ReadFileAll(fs, "run")
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte at a sweep of offsets: OpenReader or Verify must fail
	// with a typed corruption error; a silently clean read is a test
	// failure unless the flip landed in dead padding (there is none).
	for off := 0; off < len(clean); off += 37 {
		rot := append([]byte(nil), clean...)
		rot[off] ^= 0x40
		name := "rot"
		if err := storage.WriteFileAtomic(fs, name, rot); err != nil {
			t.Fatal(err)
		}
		rf, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(rf, nil)
		if err == nil {
			err = r.Verify()
			r.Close()
		} else {
			rf.Close()
		}
		if err == nil {
			t.Fatalf("flip at offset %d undetected", off)
		}
		if !errors.Is(err, storage.ErrCorruptData) {
			t.Fatalf("flip at offset %d: error not typed ErrCorruptData: %v", off, err)
		}
	}

	// Truncations must be detected too.
	for _, cut := range []int{1, headerSize, footerSize - 1, footerSize, len(clean) / 2} {
		rot := clean[:len(clean)-cut]
		if err := storage.WriteFileAtomic(fs, "trunc", rot); err != nil {
			t.Fatal(err)
		}
		rf, err := fs.Open("trunc")
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(rf, nil)
		if err == nil {
			err = r.Verify()
			r.Close()
		} else {
			rf.Close()
		}
		if err == nil {
			t.Fatalf("truncation by %d undetected", cut)
		}
	}
}

func TestCacheUseAndDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	recs := genRecords(t, rng, 200)
	fs := storage.NewMemFS()
	writeRun(t, fs, "run", recs, 16)
	f, err := fs.Open("run")
	if err != nil {
		t.Fatal(err)
	}
	cache := blockcache.New(1 << 20)
	r, err := OpenReader(f, cache)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Block(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Block(0); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits < 1 || st.Misses < 1 || st.Bytes <= 0 {
		t.Fatalf("stats after hit+miss: %+v", st)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Bytes != 0 {
		t.Fatalf("resident bytes after Close: %+v", st)
	}
}

func TestCompressionRatioOnClustered(t *testing.T) {
	// Clustered keys (long shared prefixes) must compress well: that is
	// the premise of the format. Require > 2x here on tightly clustered
	// keys; the benchmark gate measures the real skewed dataset.
	rng := rand.New(rand.NewSource(23))
	recs := make([]rec, 4096)
	var base summary.Key
	rng.Read(base[:])
	for i := range recs {
		k := base
		for j := summary.KeySize - 3; j < summary.KeySize; j++ {
			k[j] = byte(rng.Intn(256))
		}
		recs[i] = rec{key: k, pos: int64(i)*200 + int64(rng.Intn(100))}
	}
	sort.Slice(recs, func(a, b int) bool {
		return recLess(recs[a].key, recs[a].pos, recs[b].key, recs[b].pos)
	})
	fs := storage.NewMemFS()
	writeRun(t, fs, "run", recs, DefaultBlockRecords)
	f, err := fs.Open("run")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	logical := int64(len(recs)) * RecordSize
	if size*2 >= logical {
		t.Fatalf("compressed %d bytes of %d logical (%.2fx)", size, logical, float64(logical)/float64(size))
	}
}
