package runblock

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// fuzzSeedFile builds a small valid run file to seed the corpus.
func fuzzSeedFile(n, blockRecords int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]rec, n)
	for i := range recs {
		var k summary.Key
		rng.Read(k[:6])
		recs[i] = rec{key: k, pos: int64(rng.Intn(1 << 20))}
	}
	sort.Slice(recs, func(a, b int) bool {
		return recLess(recs[a].key, recs[a].pos, recs[b].key, recs[b].pos)
	})
	fs := storage.NewMemFS()
	f, _ := fs.Create("seed")
	w := NewWriter(f, blockRecords)
	for _, r := range recs {
		if err := w.Add(r.key, r.pos); err != nil {
			panic(err)
		}
	}
	if err := w.Finish(); err != nil {
		panic(err)
	}
	f.Close()
	raw, err := storage.ReadFileAll(fs, "seed")
	if err != nil {
		panic(err)
	}
	return raw
}

// FuzzRunBlock feeds arbitrary bytes to the run-file decoder: it must
// either reject them with a typed corruption error or decode records that
// are internally consistent (count matches, refined order holds) — never
// panic, never return an untyped error for malformed structure.
func FuzzRunBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzSeedFile(0, 8, 1))
	f.Add(fuzzSeedFile(5, 4, 2))
	f.Add(fuzzSeedFile(100, 16, 3))
	// A hostile seed: valid framing, garbage payload.
	hostile := fuzzSeedFile(10, 4, 4)
	if len(hostile) > headerSize+4 {
		hostile[headerSize+3] ^= 0xff
	}
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := storage.NewMemFS()
		if err := storage.WriteFileAtomic(fs, "fuzz", data); err != nil {
			t.Fatal(err)
		}
		file, err := fs.Open("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		defer file.Close()
		r, err := OpenReader(file, nil)
		if err != nil {
			if !errors.Is(err, storage.ErrCorruptData) {
				t.Fatalf("OpenReader error not typed: %v", err)
			}
			return
		}
		// Mirror the production open path: a full Verify gate first. A file
		// it rejects must be rejected with the typed error; a file it
		// accepts must then Range cleanly in refined order.
		if err := r.Verify(); err != nil {
			if !errors.Is(err, storage.ErrCorruptData) {
				t.Fatalf("Verify error not typed: %v", err)
			}
			return
		}
		var prevKey summary.Key
		var prevPos int64
		var n int64
		err = r.Range(0, r.Count(), func(k summary.Key, p int64) error {
			if n > 0 && recLess(k, p, prevKey, prevPos) {
				t.Fatal("decoded records out of refined order")
			}
			prevKey, prevPos = k, p
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("Range failed after clean Verify: %v", err)
		}
		if n != r.Count() {
			t.Fatalf("ranged %d records, Count says %d", n, r.Count())
		}
	})
}

// FuzzRoundTrip derives a sorted record set from fuzz bytes, encodes it,
// and requires a bit-exact decode plus Search agreement with sort.Search.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), 8, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(int64(2), 1, []byte{0})
	f.Add(int64(3), 600, bytes.Repeat([]byte{9}, 100))
	f.Fuzz(func(t *testing.T, seed int64, blockRecords int, raw []byte) {
		if blockRecords < 0 || blockRecords > 4096 {
			return
		}
		// Derive records: every 8 fuzz bytes seed one record via a PRNG so
		// the structure (shared prefixes, duplicates) varies with input.
		rng := rand.New(rand.NewSource(seed))
		recs := make([]rec, 0, len(raw)/4)
		var k summary.Key
		for i := 0; i+4 <= len(raw); i += 4 {
			if raw[i]%3 != 0 {
				rng.Read(k[8:])
			}
			if raw[i]%7 == 0 {
				rng.Read(k[:])
			}
			pos := int64(binary.LittleEndian.Uint32(raw[i : i+4]))
			recs = append(recs, rec{key: k, pos: pos})
		}
		sort.Slice(recs, func(a, b int) bool {
			return recLess(recs[a].key, recs[a].pos, recs[b].key, recs[b].pos)
		})
		fs := storage.NewMemFS()
		file, err := fs.Create("run")
		if err != nil {
			t.Fatal(err)
		}
		w := NewWriter(file, blockRecords)
		for _, r := range recs {
			if err := w.Add(r.key, r.pos); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(file, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.Verify(); err != nil {
			t.Fatal(err)
		}
		var i int
		if err := r.Range(0, r.Count(), func(k summary.Key, p int64) error {
			if recs[i].key != k || recs[i].pos != p {
				t.Fatalf("record %d mismatch", i)
			}
			i++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if i != len(recs) {
			t.Fatalf("decoded %d of %d records", i, len(recs))
		}
		if len(recs) > 0 {
			probe := recs[uint64(seed)%uint64(len(recs))].key
			want := int64(sort.Search(len(recs), func(j int) bool {
				return !recs[j].key.Less(probe)
			}))
			got, err := r.Search(probe)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("Search = %d, want %d", got, want)
			}
		}
	})
}
