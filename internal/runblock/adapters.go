package runblock

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

// FileWriter adapts a Writer to the storage.File surface the external
// sorter writes its final output through (extsort's WrapOut hook): a
// strictly sequential stream of fixed 24-byte records arriving via
// WriteAt is cut into records and fed to the block compressor. Close (or
// Sync) finishes the compressed file — tail block, directory, footer —
// and then delegates to the inner handle, matching extsort's contract
// that the wrapper's Close runs in place of the inner file's.
type FileWriter struct {
	inner    storage.File
	w        *Writer
	logical  int64 // logical (uncompressed) bytes accepted so far
	tail     []byte
	finished bool
	closed   bool
}

// NewFileWriter wraps inner (typically a ChecksumFile) for use as an
// extsort WrapOut target, emitting blocks of blockRecords records.
func NewFileWriter(inner storage.File, blockRecords int) *FileWriter {
	return &FileWriter{inner: inner, w: NewWriter(inner, blockRecords)}
}

// Count returns the records written so far (complete records only).
func (fw *FileWriter) Count() int64 { return fw.w.Count() }

// WriteAt accepts the next chunk of the logical record stream. Writes
// must be strictly sequential; record boundaries may fall anywhere.
func (fw *FileWriter) WriteAt(p []byte, off int64) (int, error) {
	if fw.finished {
		return 0, fmt.Errorf("runblock: write after finish")
	}
	if off != fw.logical {
		return 0, fmt.Errorf("runblock: non-sequential write at %d, want %d", off, fw.logical)
	}
	n := len(p)
	data := p
	if len(fw.tail) > 0 {
		need := RecordSize - len(fw.tail)
		if need > len(data) {
			need = len(data)
		}
		fw.tail = append(fw.tail, data[:need]...)
		data = data[need:]
		if len(fw.tail) == RecordSize {
			if err := fw.addRecord(fw.tail); err != nil {
				return 0, err
			}
			fw.tail = fw.tail[:0]
		}
	}
	for len(data) >= RecordSize {
		if err := fw.addRecord(data[:RecordSize]); err != nil {
			return 0, err
		}
		data = data[RecordSize:]
	}
	fw.tail = append(fw.tail, data...)
	fw.logical += int64(n)
	return n, nil
}

func (fw *FileWriter) addRecord(rec []byte) error {
	var k summary.Key
	copy(k[:], rec[:summary.KeySize])
	return fw.w.Add(k, int64(binary.LittleEndian.Uint64(rec[summary.KeySize:])))
}

// finish completes the compressed layout exactly once.
func (fw *FileWriter) finish() error {
	if fw.finished {
		return fw.w.err
	}
	if len(fw.tail) != 0 {
		return fmt.Errorf("runblock: %d trailing bytes do not form a record", len(fw.tail))
	}
	fw.finished = true
	return fw.w.Finish()
}

// Sync finishes the compressed layout and fsyncs the inner file.
func (fw *FileWriter) Sync() error {
	if err := fw.finish(); err != nil {
		return err
	}
	return fw.inner.Sync()
}

// Close finishes the compressed layout and closes the inner file.
func (fw *FileWriter) Close() error {
	if fw.closed {
		return nil
	}
	fw.closed = true
	err := fw.finish()
	if cerr := fw.inner.Close(); err == nil {
		err = cerr
	}
	return err
}

// Name returns the inner file's name.
func (fw *FileWriter) Name() string { return fw.inner.Name() }

// Size returns the logical (uncompressed) byte count accepted so far.
func (fw *FileWriter) Size() (int64, error) { return fw.logical, nil }

// ReadAt is not supported on the write adapter.
func (fw *FileWriter) ReadAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("runblock: FileWriter is write-only")
}

// Truncate is not supported: the compressed stream is append-only.
func (fw *FileWriter) Truncate(size int64) error {
	return fmt.Errorf("runblock: FileWriter does not support truncate")
}

// FileReader adapts an open compressed run to the storage.File surface
// the external sorter reads merge inputs through (extsort's WrapIn hook):
// ReadAt serves the logical uncompressed 24-byte record stream, decoding
// blocks on demand. It memoizes the most recently decoded block — the
// sorter reads each input once, sequentially — and deliberately bypasses
// any shared block cache so one-shot merge traffic never evicts the hot
// query working set. Not safe for concurrent use (extsort reads each
// input from a single goroutine).
type FileReader struct {
	r      *Reader
	blk    *Block
	blkIdx int
}

// NewFileReader opens inner (typically a ChecksumFile) as a compressed
// run and serves its logical record stream. Close closes inner.
func NewFileReader(inner storage.File) (*FileReader, error) {
	r, err := OpenReader(inner, nil)
	if err != nil {
		return nil, err
	}
	return &FileReader{r: r, blkIdx: -1}, nil
}

// ReadAt fills p with logical record-stream bytes starting at off.
func (fr *FileReader) ReadAt(p []byte, off int64) (int, error) {
	logical := fr.r.Count() * RecordSize
	if off < 0 {
		return 0, fmt.Errorf("runblock: negative offset %d", off)
	}
	n := 0
	for n < len(p) && off < logical {
		rec := off / RecordSize
		skip := int(off % RecordSize)
		b := fr.r.blockFor(rec)
		if fr.blkIdx != b {
			blk, err := fr.r.decodeBlock(b)
			if err != nil {
				return n, err
			}
			fr.blk, fr.blkIdx = blk, b
		}
		i := int(rec - fr.r.dir[b].startRec)
		var buf [RecordSize]byte
		copy(buf[:summary.KeySize], fr.blk.Keys[i][:])
		binary.LittleEndian.PutUint64(buf[summary.KeySize:], uint64(fr.blk.Pos[i]))
		c := copy(p[n:], buf[skip:])
		n += c
		off += int64(c)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size returns the logical (uncompressed) stream length.
func (fr *FileReader) Size() (int64, error) { return fr.r.Count() * RecordSize, nil }

// Name returns the underlying file's name.
func (fr *FileReader) Name() string { return fr.r.f.Name() }

// Close closes the underlying file.
func (fr *FileReader) Close() error { return fr.r.Close() }

// Sync delegates to the underlying file.
func (fr *FileReader) Sync() error { return fr.r.f.Sync() }

// WriteAt is not supported on the read adapter.
func (fr *FileReader) WriteAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("runblock: FileReader is read-only")
}

// Truncate is not supported on the read adapter.
func (fr *FileReader) Truncate(size int64) error {
	return fmt.Errorf("runblock: FileReader is read-only")
}
