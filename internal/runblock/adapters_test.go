package runblock

import (
	"encoding/binary"
	"io"
	"math/rand"
	"testing"

	"github.com/coconut-db/coconut/internal/storage"
)

// TestAdapterRoundTrip pushes a record stream through the extsort-facing
// write adapter with unaligned chunk boundaries, then reads it back
// through the read adapter with a different unaligned chunking, and
// requires the byte streams to match exactly.
func TestAdapterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	recs := genRecords(t, rng, 777)
	logical := make([]byte, 0, len(recs)*RecordSize)
	for _, r := range recs {
		logical = append(logical, r.key[:]...)
		logical = binary.LittleEndian.AppendUint64(logical, uint64(r.pos))
	}

	fs := storage.NewMemFS()
	inner, err := fs.Create("run")
	if err != nil {
		t.Fatal(err)
	}
	fw := NewFileWriter(inner, 16)
	// Unaligned sequential writes, as extsort's buffered writer produces.
	w := storage.NewSequentialWriter(fw, 0, 1000) // 1000 % 24 != 0
	if _, err := w.Write(logical); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if fw.Count() != int64(len(recs)) {
		t.Fatalf("Count = %d, want %d", fw.Count(), len(recs))
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	in, err := fs.Open("run")
	if err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(in)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if sz, _ := fr.Size(); sz != int64(len(logical)) {
		t.Fatalf("Size = %d, want %d", sz, len(logical))
	}
	got, err := io.ReadAll(storage.NewSequentialReader(fr, 0, -1, 700)) // 700 % 24 != 0
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(logical) {
		t.Fatalf("read %d bytes, want %d", len(got), len(logical))
	}
	for i := range got {
		if got[i] != logical[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestFileWriterRejectsTornTail(t *testing.T) {
	fs := storage.NewMemFS()
	inner, err := fs.Create("run")
	if err != nil {
		t.Fatal(err)
	}
	fw := NewFileWriter(inner, 8)
	var rec [RecordSize]byte
	if _, err := fw.WriteAt(rec[:], 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.WriteAt(rec[:10], RecordSize); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err == nil {
		t.Fatal("torn tail accepted at Close")
	}
}

func TestFileWriterRejectsNonSequential(t *testing.T) {
	fs := storage.NewMemFS()
	inner, _ := fs.Create("run")
	fw := NewFileWriter(inner, 8)
	var rec [RecordSize]byte
	if _, err := fw.WriteAt(rec[:], RecordSize); err == nil {
		t.Fatal("gap write accepted")
	}
}

func TestFileWriterEmptyStream(t *testing.T) {
	// extsort creates the wrapped output and closes it even when the
	// input is empty: the result must be a valid zero-record run.
	fs := storage.NewMemFS()
	inner, err := fs.Create("run")
	if err != nil {
		t.Fatal(err)
	}
	fw := NewFileWriter(inner, 8)
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	in, err := fs.Open("run")
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != 0 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestFileReaderRandomAccessOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	recs := genRecords(t, rng, 100)
	fs := storage.NewMemFS()
	writeRun(t, fs, "run", recs, 8)
	in, err := fs.Open("run")
	if err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(in)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	logical := make([]byte, 0, len(recs)*RecordSize)
	for _, r := range recs {
		logical = append(logical, r.key[:]...)
		logical = binary.LittleEndian.AppendUint64(logical, uint64(r.pos))
	}
	for trial := 0; trial < 300; trial++ {
		off := rng.Intn(len(logical) + 10)
		ln := rng.Intn(100)
		p := make([]byte, ln)
		n, err := fr.ReadAt(p, int64(off))
		want := len(logical) - off
		if want < 0 {
			want = 0
		}
		if want > ln {
			want = ln
		}
		if n != want {
			t.Fatalf("ReadAt(%d bytes at %d) = %d, want %d", ln, off, n, want)
		}
		if n < ln && err != io.EOF {
			t.Fatalf("short read error = %v, want io.EOF", err)
		}
		for i := 0; i < n; i++ {
			if p[i] != logical[off+i] {
				t.Fatalf("byte %d of read at %d differs", i, off)
			}
		}
	}
}
