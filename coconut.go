// Package coconut is the public API of the Coconut data series indexing
// library — a from-scratch reproduction of "Coconut: A Scalable Bottom-Up
// Approach for Building Data Series Indexes" (VLDB 2018).
//
// Coconut indexes fixed-length, z-normalized data series for fast nearest
// neighbor search under Euclidean distance. Its key idea is a SORTABLE
// summarization: the bits of a SAX word are interleaved (z-order) so that
// sorting the summaries keeps similar series adjacent, which unlocks
// bottom-up bulk loading — a few sequential passes instead of per-series
// random I/O — and median-based splitting, which packs leaves densely.
//
// # Quick start
//
//	fs := coconut.NewMemStorage()           // or NewDiskStorage(dir)
//	coconut.GenerateDataset(fs, "data.bin", coconut.RandomWalk, 100000, 256, 1)
//	idx, err := coconut.BuildTreeIndex(coconut.Config{
//	    Storage:   fs,
//	    Name:      "myindex",
//	    DataFile:  "data.bin",
//	    SeriesLen: 256,
//	})
//	...
//	res, err := idx.Search(query)        // exact 1-NN
//	res, err = idx.SearchApprox(query, 1) // fast approximate, radius 1
//
// The library also ships every baseline the paper compares against (iSAX
// 2.0, ADS+/ADSFull, R-tree/STR, Vertical/DHWT, DSTree) under internal/,
// plus the full benchmark harness that regenerates each figure of the
// paper's evaluation (cmd/benchrunner, bench_test.go).
//
// # Concurrency
//
// Index handles are safe for concurrent use. Any number of goroutines may
// run Search, SearchApprox, and SearchKNN on one shared handle at the same
// time: per-query scratch buffers and page staging live on the query's
// stack, not on the handle, and the lazily refreshed SIMS summary state is
// guarded internally. Mutations (Insert, Flush, Close) serialize against
// in-flight queries through a handle-level reader-writer lock, so they may
// be issued concurrently with queries too — they simply wait for readers
// and vice versa.
//
// Within a single query, the library shards the heavy phases of SIMS exact
// search across Config.QueryWorkers goroutines: the lower-bound pass over
// the in-memory summaries, the candidate-verification scan of both 1-NN and
// k-NN search (by leaf range when materialized, by raw-file position range
// otherwise, with deterministic per-shard bounds reduced in shard order),
// and — for LSM indexes — the per-run probes of multi-run queries.
// QueryWorkers = 0 uses all CPUs; the answers (positions, distances) are
// identical for any setting, so it is purely a latency knob. For maximum
// throughput under many concurrent queries, QueryWorkers = 1 avoids
// oversubscription; for minimum single-query latency, leave it 0.
//
// # Write path
//
// Index construction is parallel end to end: raw series are summarized in
// blocks on Config.Workers goroutines (the batched pipeline feeding run
// formation in order), the external sort forms and merges runs across the
// same workers, and the built index is byte-identical for any worker count.
//
// LSM ingest (Insert on an LSMIndex) appends raw bytes, summarizes each
// batch across Workers goroutines, and flushes full memtables as sorted
// runs. By default tier compactions run synchronously inside Insert/Flush;
// setting Config.BackgroundCompaction moves them to a pool of
// Config.CompactionWorkers goroutines that merge full tiers concurrently —
// independent tiers compact in parallel — and swap results in under the
// handle lock, keeping Insert latency flat under sustained load. A bounded
// tier-0 backlog provides backpressure: when flushes outrun the pool,
// Insert briefly blocks rather than burying the scheduler. Sync (or Close)
// is the quiescence barrier: it drains in-flight compactions, after which
// the on-disk state is byte-identical to synchronous compaction — a
// background compaction failure is sticky and surfaces on the next
// Insert/Flush/Sync/Close.
//
// # Cancellation
//
// Every query and mutation has a context-taking variant (SearchCtx,
// SearchApproxCtx, SearchKNNCtx, InsertCtx, and ctx-taking Build/Open
// wrappers). Cancellation is honored end to end: a query observes its
// context between leaf visits, candidate verifications, partition probes,
// and LSM run probes, so a cancelled or deadline-exceeded context returns
// ctx.Err() promptly — never a partial or wrong answer. On the write path
// the context is admission control: it is checked before any bytes move,
// and an LSM insert whose context expires while waiting for WAL group
// commit abandons the wait (returning ctx.Err()) without disturbing the
// batch — the record still becomes durable. The context-free methods are
// exactly their Ctx counterparts under context.Background().
//
// # Persistence
//
// Every build commits a versioned, checksummed manifest alongside the
// index files, and Close leaves a fully durable index behind: a later
// process reopens it with OpenTreeIndex, OpenTrieIndex, or OpenLSMIndex
// and gets byte-identical answers without re-reading the raw dataset
// (LSM run key arrays reload from the run files themselves). Manifest
// commits are atomic (write-temp + rename), so a crash never leaves a
// torn manifest — at worst the last committed state reopens. On reopen,
// unset Config fields (series length, segments, leaf size, data file)
// are adopted from the manifest; explicitly conflicting values fail
// loudly rather than misread the stored bytes.
package coconut

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/partition"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/storage/blockcache"
	"github.com/coconut-db/coconut/internal/summary"
)

// Typed persistence errors, re-exported so callers can branch on reopen
// failures with errors.Is.
var (
	// ErrCorruptManifest reports a manifest (or an index file it
	// describes) that failed checksum or structural validation.
	ErrCorruptManifest = manifest.ErrCorruptManifest
	// ErrVersionMismatch reports a manifest written by an incompatible
	// format version.
	ErrVersionMismatch = manifest.ErrVersionMismatch
	// ErrConfigMismatch reports a Config that conflicts with the stored
	// index (different summarization, materialization, or dataset file).
	ErrConfigMismatch = manifest.ErrConfigMismatch
	// ErrCorruptData reports stored bytes that failed their block or
	// record checksum — bit rot, a torn write, or an overwritten file.
	// Every open and read path surfaces it via errors.Is; no query ever
	// computes an answer from bytes that failed verification.
	ErrCorruptData = storage.ErrCorruptData
)

// Series is one data series: an ordered sequence of float64 values. Inputs
// are z-normalized automatically where the paper's pipeline requires it.
type Series = series.Series

// Storage abstracts the device the index lives on. Use NewMemStorage for
// an instrumented in-memory device (experiments, tests) or NewDiskStorage
// for real files.
type Storage = storage.FS

// IOStats is a snapshot of device I/O counters (sequential vs random reads
// and writes, bytes moved).
type IOStats = storage.Snapshot

// NewMemStorage returns an in-memory storage device with I/O accounting —
// the simulated disk used throughout the experiments.
func NewMemStorage() *storage.MemFS { return storage.NewMemFS() }

// NewDiskStorage returns a storage device backed by directory dir.
func NewDiskStorage(dir string) (Storage, error) { return storage.NewOSFS(dir) }

// DatasetKind names a built-in dataset generator.
type DatasetKind string

// Built-in dataset families (see internal/dataset for the definitions and
// the substitutions DESIGN.md documents for the paper's real datasets).
const (
	RandomWalk DatasetKind = "randomwalk"
	Seismic    DatasetKind = "seismic"
	Astronomy  DatasetKind = "astronomy"
	// Skewed draws series as Zipf-popular recurring shapes with regime
	// shifts — the clustered workload real collections exhibit, and the
	// one where block-compressed runs achieve their storage ratio.
	Skewed DatasetKind = "skewed"
)

// GenerateDataset writes count z-normalized series of length seriesLen to
// file name on fs, deterministically from seed.
func GenerateDataset(fs Storage, name string, kind DatasetKind, count, seriesLen int, seed int64) error {
	gen, err := dataset.ByName(string(kind))
	if err != nil {
		return err
	}
	_, err = dataset.WriteFile(fs, name, gen, count, seriesLen, seed)
	return err
}

// GenerateQueries draws count query series from the same family.
func GenerateQueries(kind DatasetKind, count, seriesLen int, seed int64) ([]Series, error) {
	gen, err := dataset.ByName(string(kind))
	if err != nil {
		return nil, err
	}
	return dataset.Queries(gen, count, seriesLen, seed), nil
}

// Config configures an index build.
type Config struct {
	// Storage hosts the dataset and index files.
	Storage Storage
	// Name prefixes the index files.
	Name string
	// DataFile is the raw dataset (headerless little-endian float64s).
	DataFile string
	// SeriesLen is the length of every series in the dataset.
	SeriesLen int
	// Segments is the SAX segment count (default 16, the paper's setting).
	Segments int
	// CardinalityBits is the bits per SAX symbol (default 8 → cardinality
	// 256).
	CardinalityBits int
	// LeafSize is the records-per-leaf capacity (default 2000).
	LeafSize int
	// Materialized stores raw series inside the index (the paper's "-Full"
	// variants): bigger index, but queries never touch the dataset file.
	Materialized bool
	// MemoryBudget bounds construction memory in bytes (default 64 MiB).
	MemoryBudget int64
	// FillFactor packs Coconut-Tree leaves to this fraction on bulk load
	// (default 1.0). Leave headroom (< 1.0) for update-heavy workloads.
	FillFactor float64
	// Workers is the number of concurrent workers used during index
	// construction — chunk sorting, run merging, and (LSM) ingest
	// summarization all fan out across them, with MemoryBudget partitioned
	// so the total stays within budget. 0 means runtime.NumCPU(). The
	// built index is byte-identical for any value.
	Workers int
	// QueryWorkers is the per-query fan-out: the SIMS lower-bound pass and
	// the exact-search candidate-verification scan (1-NN and k-NN) shard
	// across this many goroutines (LSM indexes also probe independent runs
	// concurrently). 0 means all CPUs. Search answers are identical for any
	// value; see the package-level Concurrency section for how to choose it.
	QueryWorkers int
	// BackgroundCompaction (LSM indexes) moves tier compactions off the
	// write path onto a background pool, keeping Insert latency flat;
	// see the package-level Write path section. Sync/Close drain the pool.
	BackgroundCompaction bool
	// CompactionWorkers sizes the background compaction pool (default 2).
	// Independent tiers compact concurrently, so 2+ lets a long high-tier
	// merge overlap fresh tier-0 merges.
	CompactionWorkers int
	// MaxPendingRuns bounds the outstanding tier-0 runs under background
	// compaction (default 2x the LSM fanout): when flushes outrun the pool,
	// Insert briefly blocks instead of letting runs pile up unboundedly.
	// Partitioned indexes divide this budget across partitions.
	MaxPendingRuns int
	// Partitions splits the index into N independent key-range partitions
	// (boundaries chosen from a dataset sample so partitions balance),
	// built in parallel and queried scatter-gather. 0 or 1 builds a single
	// index; Open adopts the stored count when 0 and fails with
	// ErrConfigMismatch when the value conflicts with the stored index.
	// Search answers are byte-identical for any partition count.
	Partitions int
	// DisableWAL turns off the LSM write-ahead log. By default every
	// Insert returns only after its raw bytes and a WAL record are fsynced
	// (concurrent inserts share one fsync via group commit) and reopening
	// after a crash replays un-flushed records into the memtable. With the
	// WAL disabled, records appended since the last flush are lost on a
	// crash — the pre-WAL behavior, appropriate for bulk reloads that can
	// simply be re-run. Partitioned indexes keep one WAL per partition.
	DisableWAL bool
	// WALGroupWindow optionally stretches each WAL group commit by this
	// duration before the fsync, admitting more concurrent inserts into
	// the batch — higher throughput at the cost of added latency per
	// insert. 0 (the default) syncs as soon as the committer picks up a
	// batch.
	WALGroupWindow time.Duration
	// DisableChecksums builds the index WITHOUT the per-block CRC layer.
	// By default every persistent artifact (B+-tree pages, trie leaves,
	// LSM run files, and a sidecar for the raw dataset) is checksummed and
	// verified on read, so bit rot is detected instead of silently
	// corrupting answers. Whether an index is checksummed is recorded in
	// its manifest: Open always adopts the stored format, so indexes built
	// by earlier versions (or with this flag) keep reopening unchanged.
	DisableChecksums bool
	// DisableCompression builds LSM run files as flat record arrays whose
	// keys load whole into memory at open — the pre-compression layout. By
	// default LSM runs are block-compressed on disk (sorted invSAX keys
	// front-coded + delta-encoded, positions delta-varint-encoded) and read
	// through a shared bounded block cache, so resident memory is O(cache
	// budget) rather than O(dataset) and indexes larger than RAM open and
	// answer. Which layout an index uses is recorded in its manifest: Open
	// always adopts the stored format, so indexes built by earlier versions
	// (or with this flag) keep reopening unchanged. Answers are
	// byte-identical either way. Tree/Trie indexes are unaffected.
	DisableCompression bool
	// CacheBytes bounds the shared decoded-block cache a compressed LSM
	// index reads through (default 128 MiB). One cache serves all runs,
	// partitions, and concurrent queries of the handle; CacheStats reports
	// its hit/miss/eviction counters for sizing.
	CacheBytes int64
	// AllowDegraded lets Open succeed over a partially corrupt index:
	// an unreadable LSM run or partition child is quarantined and queries
	// answer over the healthy remainder (Degraded() reports the state,
	// Count() the records still covered). Writes routed to a quarantined
	// partition fail loudly. Without it, corruption fails Open with
	// ErrCorruptData. LSM quarantined runs are repairable in place with
	// Repair (the raw dataset re-derives them).
	AllowDegraded bool
	// ReadRetries re-attempts transient device read errors this many times
	// (exponential backoff starting at RetryBackoff) before the error
	// turns sticky for the handle. Deterministic failures — checksum
	// mismatches, missing files — are never retried. 0 disables retries.
	ReadRetries int
	// RetryBackoff is the initial retry delay (default 1ms), doubling per
	// attempt.
	RetryBackoff time.Duration
}

func (c *Config) toCore() (core.Options, error) {
	if c.Storage == nil {
		return core.Options{}, errors.New("coconut: nil Storage")
	}
	if c.SeriesLen <= 0 {
		return core.Options{}, errors.New("coconut: SeriesLen must be positive")
	}
	if c.Partitions < 0 {
		return core.Options{}, fmt.Errorf("coconut: Partitions must be non-negative, got %d", c.Partitions)
	}
	p := summary.Params{SeriesLen: c.SeriesLen, Segments: c.Segments, CardBits: c.CardinalityBits}
	if p.Segments == 0 {
		p.Segments = 16
	}
	if p.CardBits == 0 {
		p.CardBits = 8
	}
	if p.Segments > c.SeriesLen {
		p.Segments = c.SeriesLen
	}
	s, err := summary.NewSummarizer(p)
	if err != nil {
		return core.Options{}, fmt.Errorf("coconut: %w", err)
	}
	leaf := c.LeafSize
	if leaf == 0 {
		leaf = 2000
	}
	fs := c.Storage
	if c.ReadRetries > 0 {
		fs = storage.NewRetryFS(fs, storage.RetryPolicy{Retries: c.ReadRetries, Backoff: c.RetryBackoff})
	}
	return core.Options{
		FS:             fs,
		Name:           c.Name,
		S:              s,
		RawName:        c.DataFile,
		Materialized:   c.Materialized,
		LeafCap:        leaf,
		MemBudgetBytes: c.MemoryBudget,
		FillFactor:     c.FillFactor,
		Workers:        c.Workers,
		QueryWorkers:   c.QueryWorkers,
		Checksums:      !c.DisableChecksums,
	}, nil
}

// mergeStored loads the manifest of the persisted index cfg names and
// adopts stored parameters into unset Config fields, so reopening needs
// only Storage and Name. Explicitly set fields are left alone — the Open
// paths fail loudly (ErrConfigMismatch) if they conflict with the store.
// want is the single-partition variant; a stored PARTITIONED index whose
// children are that variant is accepted too, reported through the
// partitioned return (with cfg.Partitions adopted or cross-checked).
func (c *Config) mergeStored(want manifest.Variant) (partitioned bool, err error) {
	if c.Storage == nil {
		return false, errors.New("coconut: nil Storage")
	}
	m, err := core.LoadManifest(c.Storage, c.Name)
	if err != nil {
		return false, err
	}
	switch {
	case m.Variant == want:
		if c.Partitions >= 2 {
			return false, fmt.Errorf("coconut: %w: Partitions=%d, stored index is not partitioned",
				ErrConfigMismatch, c.Partitions)
		}
	case m.Variant == manifest.VariantPartitioned && m.Part != nil && m.Part.ChildVariant == want:
		if c.Partitions != 0 && c.Partitions != m.Part.Partitions {
			return false, fmt.Errorf("coconut: %w: Partitions=%d, stored index has %d partitions",
				ErrConfigMismatch, c.Partitions, m.Part.Partitions)
		}
		c.Partitions = m.Part.Partitions
		partitioned = true
	default:
		if err := m.CheckVariant(want); err != nil {
			return false, fmt.Errorf("coconut: %w", err)
		}
	}
	if c.SeriesLen == 0 {
		c.SeriesLen = m.SeriesLen
	}
	if c.Segments == 0 {
		c.Segments = m.Segments
	}
	if c.CardinalityBits == 0 {
		c.CardinalityBits = m.CardBits
	}
	if c.DataFile == "" {
		c.DataFile = m.RawName
	}
	if c.LeafSize == 0 && m.LeafCap != 0 {
		c.LeafSize = m.LeafCap
	}
	// Materialization is a property of the stored bytes, not a knob.
	c.Materialized = m.Materialized
	return partitioned, nil
}

// Result is a search answer.
type Result struct {
	// Position is the ordinal of the nearest series in the dataset file.
	Position int64
	// Distance is its Euclidean distance to the query.
	Distance float64
	// VisitedSeries counts how many raw series were examined.
	VisitedSeries int64
	// VisitedLeaves counts index leaf pages read.
	VisitedLeaves int64
}

func fromCore(r core.Result) Result {
	return Result{
		Position:      r.Pos,
		Distance:      r.Dist,
		VisitedSeries: r.VisitedRecords,
		VisitedLeaves: r.VisitedLeaves,
	}
}

// treeBackend is the surface shared by a single Coconut-Tree and its
// N-way partitioned composition; both answer byte-identically.
type treeBackend interface {
	ExactSearch(q series.Series, radius int) (core.Result, error)
	ApproxSearch(q series.Series, radius int) (core.Result, error)
	ExactSearchKNN(q series.Series, k, radius int) ([]core.Neighbor, core.Result, error)
	InsertBatch(batch []series.Series) error
	ExactSearchCtx(ctx context.Context, q series.Series, radius int) (core.Result, error)
	ApproxSearchCtx(ctx context.Context, q series.Series, radius int) (core.Result, error)
	ExactSearchKNNCtx(ctx context.Context, q series.Series, k, radius int) ([]core.Neighbor, core.Result, error)
	InsertBatchCtx(ctx context.Context, batch []series.Series) error
	Count() int64
	NumLeaves() int
	AvgLeafFill() float64
	SizeBytes() int64
	Sync() error
	Close() error
}

// TreeIndex is a Coconut-Tree index: balanced, contiguous, densely packed —
// the paper's recommended design. With Config.Partitions >= 2 it is an
// N-way key-range-partitioned composition of such trees, built in parallel
// and queried scatter-gather with byte-identical answers.
type TreeIndex struct {
	ix treeBackend
}

// ctxGate implements the coarse-grained cancellation contract of the
// Build*/Open* Ctx wrappers: the context is checked at entry (before any
// file is touched) and again after the phase completes — a build/open that
// finishes under an already-done ctx closes the fresh handle and returns
// ctx.Err(). Construction itself is not interrupted mid-pass; its phases
// are sequential bulk I/O, and a cancelled caller loses nothing but time
// already spent.
func ctxGate[T interface{ Close() error }](ctx context.Context, build func() (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	ix, err := build()
	if err != nil {
		return zero, err
	}
	if cerr := ctx.Err(); cerr != nil {
		ix.Close()
		return zero, cerr
	}
	return ix, nil
}

// BuildTreeIndex bulk-loads a Coconut-Tree over the dataset.
func BuildTreeIndex(cfg Config) (*TreeIndex, error) {
	return BuildTreeIndexCtx(context.Background(), cfg)
}

// BuildTreeIndexCtx is BuildTreeIndex with coarse-grained cancellation:
// ctx is checked before the build starts and after it finishes (see
// ctxGate); it does not interrupt the bulk-load mid-pass.
func BuildTreeIndexCtx(ctx context.Context, cfg Config) (*TreeIndex, error) {
	opt, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	if cfg.Partitions >= 2 {
		ix, err := ctxGate(ctx, func() (*partition.Tree, error) {
			return partition.BuildTree(opt, cfg.Partitions)
		})
		if err != nil {
			return nil, err
		}
		return &TreeIndex{ix: ix}, nil
	}
	ix, err := ctxGate(ctx, func() (*core.TreeIndex, error) {
		return core.BuildTree(opt)
	})
	if err != nil {
		return nil, err
	}
	return &TreeIndex{ix: ix}, nil
}

// OpenTreeIndex reopens a Coconut-Tree previously built (and Closed) over
// cfg.Storage, reconstructing the handle from the persisted manifest and
// B+-tree without touching the raw dataset. A partitioned tree reopens
// through its parent manifest (child by child, never partially). Unset
// Config fields are adopted from the manifest; conflicting ones fail with
// ErrConfigMismatch.
func OpenTreeIndex(cfg Config) (*TreeIndex, error) {
	return OpenTreeIndexCtx(context.Background(), cfg)
}

// OpenTreeIndexCtx is OpenTreeIndex with coarse-grained cancellation:
// ctx is checked before the manifest is read and after the handle is
// reconstructed (see ctxGate); the reopen is not interrupted mid-pass.
func OpenTreeIndexCtx(ctx context.Context, cfg Config) (*TreeIndex, error) {
	partitioned, err := cfg.mergeStored(manifest.VariantTree)
	if err != nil {
		return nil, err
	}
	opt, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	if partitioned {
		ix, err := ctxGate(ctx, func() (*partition.Tree, error) {
			return partition.OpenTree(opt, cfg.Partitions, cfg.AllowDegraded)
		})
		if err != nil {
			return nil, err
		}
		return &TreeIndex{ix: ix}, nil
	}
	ix, err := ctxGate(ctx, func() (*core.TreeIndex, error) {
		return core.OpenTree(opt)
	})
	if err != nil {
		return nil, err
	}
	return &TreeIndex{ix: ix}, nil
}

// Search returns the exact nearest neighbor of q (CoconutTreeSIMS).
func (t *TreeIndex) Search(q Series) (Result, error) {
	return t.SearchCtx(context.Background(), q)
}

// SearchCtx is Search with cancellation: the query observes ctx between
// leaf visits and candidate verifications (across every partition), so a
// cancelled or expired ctx returns ctx.Err() promptly — never a partial
// answer.
func (t *TreeIndex) SearchCtx(ctx context.Context, q Series) (Result, error) {
	r, err := t.ix.ExactSearchCtx(ctx, q, 1)
	return fromCore(r), err
}

// SearchApprox returns a fast approximate nearest neighbor, examining the
// target leaf plus radius neighbors on each side (Algorithm 4).
func (t *TreeIndex) SearchApprox(q Series, radius int) (Result, error) {
	return t.SearchApproxCtx(context.Background(), q, radius)
}

// SearchApproxCtx is SearchApprox with cancellation (see SearchCtx).
func (t *TreeIndex) SearchApproxCtx(ctx context.Context, q Series, radius int) (Result, error) {
	r, err := t.ix.ApproxSearchCtx(ctx, q, radius)
	return fromCore(r), err
}

// Insert adds new series to the index and dataset (batched; sorting the
// batch internally concentrates leaf touches).
func (t *TreeIndex) Insert(batch []Series) error { return t.ix.InsertBatch(batch) }

// InsertCtx is Insert with admission control: ctx is checked before any
// bytes move, so a done ctx rejects the batch up front with ctx.Err().
// Once the batch is admitted it runs to completion — aborting a routed
// multi-partition insert midway would leave the dataset and index out of
// step.
func (t *TreeIndex) InsertCtx(ctx context.Context, batch []Series) error {
	return t.ix.InsertBatchCtx(ctx, batch)
}

// Count returns the number of indexed series.
func (t *TreeIndex) Count() int64 { return t.ix.Count() }

// NumLeaves returns the number of leaf pages.
func (t *TreeIndex) NumLeaves() int { return t.ix.NumLeaves() }

// LeafFill returns the mean leaf occupancy in [0,1].
func (t *TreeIndex) LeafFill() float64 { return t.ix.AvgLeafFill() }

// SizeBytes returns the on-device index size.
func (t *TreeIndex) SizeBytes() int64 { return t.ix.SizeBytes() }

// Degraded reports whether the index was opened with AllowDegraded over
// corrupt artifacts: some partitions are quarantined and answers cover
// only the healthy remainder (Count() says how many records that is).
func (t *TreeIndex) Degraded() bool {
	if d, ok := t.ix.(interface{ Degraded() bool }); ok {
		return d.Degraded()
	}
	return false
}

// Sync persists metadata made stale by Insert (the B+-tree directory and
// the manifest) so a crash afterwards loses nothing. Close syncs too.
func (t *TreeIndex) Sync() error { return t.ix.Sync() }

// Close persists pending metadata and releases the index's file handles;
// the index can later be reopened with OpenTreeIndex.
func (t *TreeIndex) Close() error { return t.ix.Close() }

// trieBackend is the surface shared by a single Coconut-Trie and its
// N-way partitioned composition.
type trieBackend interface {
	ExactSearch(q series.Series, radius int) (core.Result, error)
	ApproxSearch(q series.Series, radius int) (core.Result, error)
	ExactSearchCtx(ctx context.Context, q series.Series, radius int) (core.Result, error)
	ApproxSearchCtx(ctx context.Context, q series.Series, radius int) (core.Result, error)
	Count() int64
	NumLeaves() int
	AvgLeafFill() float64
	SizeBytes() int64
	Close() error
}

// TrieIndex is a Coconut-Trie index: prefix-split, bottom-up bulk-loaded,
// contiguous leaves. Mostly of interest for studying the design space; use
// TreeIndex for applications. Config.Partitions >= 2 composes N of them by
// key range with byte-identical answers.
type TrieIndex struct {
	ix trieBackend
}

// BuildTrieIndex bulk-loads a Coconut-Trie over the dataset.
func BuildTrieIndex(cfg Config) (*TrieIndex, error) {
	return BuildTrieIndexCtx(context.Background(), cfg)
}

// BuildTrieIndexCtx is BuildTrieIndex with coarse-grained cancellation
// (see BuildTreeIndexCtx).
func BuildTrieIndexCtx(ctx context.Context, cfg Config) (*TrieIndex, error) {
	opt, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	if cfg.Partitions >= 2 {
		ix, err := ctxGate(ctx, func() (*partition.Trie, error) {
			return partition.BuildTrie(opt, cfg.Partitions)
		})
		if err != nil {
			return nil, err
		}
		return &TrieIndex{ix: ix}, nil
	}
	ix, err := ctxGate(ctx, func() (*core.TrieIndex, error) {
		return core.BuildTrie(opt)
	})
	if err != nil {
		return nil, err
	}
	return &TrieIndex{ix: ix}, nil
}

// OpenTrieIndex reopens a Coconut-Trie previously built (and Closed) over
// cfg.Storage: the sorted summary array reloads from the index's own
// contiguous leaves and the in-memory trie is reconstructed and verified
// against the manifest — the raw dataset is never read. A partitioned
// trie reopens through its parent manifest. Unset Config fields are
// adopted from the manifest; conflicting ones fail with
// ErrConfigMismatch.
func OpenTrieIndex(cfg Config) (*TrieIndex, error) {
	return OpenTrieIndexCtx(context.Background(), cfg)
}

// OpenTrieIndexCtx is OpenTrieIndex with coarse-grained cancellation
// (see OpenTreeIndexCtx).
func OpenTrieIndexCtx(ctx context.Context, cfg Config) (*TrieIndex, error) {
	partitioned, err := cfg.mergeStored(manifest.VariantTrie)
	if err != nil {
		return nil, err
	}
	opt, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	if partitioned {
		ix, err := ctxGate(ctx, func() (*partition.Trie, error) {
			return partition.OpenTrie(opt, cfg.Partitions, cfg.AllowDegraded)
		})
		if err != nil {
			return nil, err
		}
		return &TrieIndex{ix: ix}, nil
	}
	ix, err := ctxGate(ctx, func() (*core.TrieIndex, error) {
		return core.OpenTrie(opt)
	})
	if err != nil {
		return nil, err
	}
	return &TrieIndex{ix: ix}, nil
}

// Search returns the exact nearest neighbor of q.
func (t *TrieIndex) Search(q Series) (Result, error) {
	return t.SearchCtx(context.Background(), q)
}

// SearchCtx is Search with cancellation: a done ctx returns ctx.Err()
// promptly, never a partial answer.
func (t *TrieIndex) SearchCtx(ctx context.Context, q Series) (Result, error) {
	r, err := t.ix.ExactSearchCtx(ctx, q, 0)
	return fromCore(r), err
}

// SearchApprox returns a fast approximate nearest neighbor.
func (t *TrieIndex) SearchApprox(q Series, radius int) (Result, error) {
	return t.SearchApproxCtx(context.Background(), q, radius)
}

// SearchApproxCtx is SearchApprox with cancellation (see SearchCtx).
func (t *TrieIndex) SearchApproxCtx(ctx context.Context, q Series, radius int) (Result, error) {
	r, err := t.ix.ApproxSearchCtx(ctx, q, radius)
	return fromCore(r), err
}

// Count returns the number of indexed series.
func (t *TrieIndex) Count() int64 { return t.ix.Count() }

// NumLeaves returns the number of leaves.
func (t *TrieIndex) NumLeaves() int { return t.ix.NumLeaves() }

// LeafFill returns the mean leaf occupancy in [0,1].
func (t *TrieIndex) LeafFill() float64 { return t.ix.AvgLeafFill() }

// SizeBytes returns the on-device index size.
func (t *TrieIndex) SizeBytes() int64 { return t.ix.SizeBytes() }

// Degraded reports whether the index was opened with AllowDegraded over
// corrupt artifacts; answers cover only the healthy remainder.
func (t *TrieIndex) Degraded() bool {
	if d, ok := t.ix.(interface{ Degraded() bool }); ok {
		return d.Degraded()
	}
	return false
}

// Close releases the index's file handles.
func (t *TrieIndex) Close() error { return t.ix.Close() }

// Neighbor is one k-NN answer.
type Neighbor struct {
	// Position is the series' ordinal in the dataset file.
	Position int64
	// Distance is its Euclidean distance to the query.
	Distance float64
}

// SearchKNN returns the k exact nearest neighbors of q in ascending
// distance order.
func (t *TreeIndex) SearchKNN(q Series, k int) ([]Neighbor, error) {
	return t.SearchKNNCtx(context.Background(), q, k)
}

// SearchKNNCtx is SearchKNN with cancellation (see SearchCtx): a done ctx
// returns ctx.Err(), never a truncated neighbor list.
func (t *TreeIndex) SearchKNNCtx(ctx context.Context, q Series, k int) ([]Neighbor, error) {
	ns, _, err := t.ix.ExactSearchKNNCtx(ctx, q, k, 1)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, len(ns))
	for i, n := range ns {
		out[i] = Neighbor{Position: n.Pos, Distance: n.Dist}
	}
	return out, nil
}

// lsmBackend is the surface shared by a single Coconut-LSM and its N-way
// partitioned composition (per-partition memtables and compaction).
type lsmBackend interface {
	ExactSearch(q series.Series) (lsm.Result, error)
	ApproxSearch(q series.Series) (lsm.Result, error)
	Append(batch []series.Series) error
	ExactSearchCtx(ctx context.Context, q series.Series) (lsm.Result, error)
	ApproxSearchCtx(ctx context.Context, q series.Series) (lsm.Result, error)
	AppendCtx(ctx context.Context, batch []series.Series) error
	Flush() error
	Sync() error
	Count() int64
	NumRuns() int
	SizeBytes() int64
	Degraded() bool
	RebuildQuarantined() error
	Close() error
}

// LSMIndex is Coconut-LSM: the paper's future-work design for update-heavy
// workloads. Inserts land in a memtable and flush as immutable sorted runs
// (append-only sequential I/O); tiers compact by merge-sorting —
// synchronously inside Insert/Flush by default, or on a background pool
// with Config.BackgroundCompaction. Queries see the memtable and all runs.
// With Config.Partitions >= 2 inserts route to the owning partition's
// memtable and each partition compacts independently under the divided
// global budgets.
type LSMIndex struct {
	ix lsmBackend
}

// toLSM derives the LSM option set from the resolved core options. The
// block cache is created here — once per handle — so a partitioned index's
// children (which copy these options) all read through the same cache, and
// Open can adopt a stored Compressed flag that differs from the caller's
// without losing the shared budget.
func (c *Config) toLSM(opt core.Options) lsm.Options {
	return lsm.Options{
		FS:                   opt.FS,
		Name:                 opt.Name,
		S:                    opt.S,
		RawName:              opt.RawName,
		MemBudgetBytes:       opt.MemBudgetBytes,
		Workers:              opt.Workers,
		QueryWorkers:         opt.QueryWorkers,
		BackgroundCompaction: c.BackgroundCompaction,
		CompactionWorkers:    c.CompactionWorkers,
		MaxPendingRuns:       c.MaxPendingRuns,
		DisableWAL:           c.DisableWAL,
		WALGroupWindow:       c.WALGroupWindow,
		Checksums:            opt.Checksums,
		Compressed:           !c.DisableCompression,
		Cache:                blockcache.New(c.CacheBytes),
		AllowDegraded:        c.AllowDegraded,
	}
}

// BuildLSMIndex bulk-loads the initial run over the dataset.
func BuildLSMIndex(cfg Config) (*LSMIndex, error) {
	return BuildLSMIndexCtx(context.Background(), cfg)
}

// BuildLSMIndexCtx is BuildLSMIndex with coarse-grained cancellation
// (see BuildTreeIndexCtx).
func BuildLSMIndexCtx(ctx context.Context, cfg Config) (*LSMIndex, error) {
	opt, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	if cfg.Partitions >= 2 {
		ix, err := ctxGate(ctx, func() (*partition.LSM, error) {
			return partition.BuildLSM(cfg.toLSM(opt), cfg.Partitions)
		})
		if err != nil {
			return nil, err
		}
		return &LSMIndex{ix: ix}, nil
	}
	ix, err := ctxGate(ctx, func() (*lsm.Index, error) {
		return lsm.Build(cfg.toLSM(opt))
	})
	if err != nil {
		return nil, err
	}
	return &LSMIndex{ix: ix}, nil
}

// OpenLSMIndex reopens a Coconut-LSM previously built (and Closed) over
// cfg.Storage: every run's key array reloads from the run file itself —
// never the raw dataset — and the deterministic compaction cursors are
// restored, so subsequent Inserts continue the exact flush/compaction
// sequence a never-closed index would have produced. A partitioned LSM
// reopens through its parent manifest, each child restoring its own run
// set. Unset Config fields are adopted from the manifest; conflicting
// ones fail with ErrConfigMismatch.
func OpenLSMIndex(cfg Config) (*LSMIndex, error) {
	return OpenLSMIndexCtx(context.Background(), cfg)
}

// OpenLSMIndexCtx is OpenLSMIndex with coarse-grained cancellation
// (see OpenTreeIndexCtx).
func OpenLSMIndexCtx(ctx context.Context, cfg Config) (*LSMIndex, error) {
	partitioned, err := cfg.mergeStored(manifest.VariantLSM)
	if err != nil {
		return nil, err
	}
	opt, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	if partitioned {
		ix, err := ctxGate(ctx, func() (*partition.LSM, error) {
			return partition.OpenLSM(cfg.toLSM(opt), cfg.Partitions)
		})
		if err != nil {
			return nil, err
		}
		return &LSMIndex{ix: ix}, nil
	}
	ix, err := ctxGate(ctx, func() (*lsm.Index, error) {
		return lsm.Open(cfg.toLSM(opt))
	})
	if err != nil {
		return nil, err
	}
	return &LSMIndex{ix: ix}, nil
}

// Search returns the exact nearest neighbor of q.
func (l *LSMIndex) Search(q Series) (Result, error) {
	return l.SearchCtx(context.Background(), q)
}

// SearchCtx is Search with cancellation: the query observes ctx between
// run probes and candidate verifications (across every partition), so a
// done ctx returns ctx.Err() promptly — never a partial answer.
func (l *LSMIndex) SearchCtx(ctx context.Context, q Series) (Result, error) {
	r, err := l.ix.ExactSearchCtx(ctx, q)
	return Result{Position: r.Pos, Distance: r.Dist, VisitedSeries: r.VisitedRecords}, err
}

// SearchApprox returns a fast approximate nearest neighbor.
func (l *LSMIndex) SearchApprox(q Series) (Result, error) {
	return l.SearchApproxCtx(context.Background(), q)
}

// SearchApproxCtx is SearchApprox with cancellation (see SearchCtx).
func (l *LSMIndex) SearchApproxCtx(ctx context.Context, q Series) (Result, error) {
	r, err := l.ix.ApproxSearchCtx(ctx, q)
	return Result{Position: r.Pos, Distance: r.Dist, VisitedSeries: r.VisitedRecords}, err
}

// Insert appends new series; full memtables flush to new sorted runs.
func (l *LSMIndex) Insert(batch []Series) error { return l.ix.Append(batch) }

// InsertCtx is Insert with cancellation. The ctx is admission control —
// checked before any bytes move — plus an interruptible durability wait:
// if ctx expires while the insert waits on WAL group commit, InsertCtx
// returns ctx.Err() without disturbing the batch (the records still
// become durable; only this caller stops waiting for the fsync).
func (l *LSMIndex) InsertCtx(ctx context.Context, batch []Series) error {
	return l.ix.AppendCtx(ctx, batch)
}

// Flush forces the memtable to disk.
func (l *LSMIndex) Flush() error { return l.ix.Flush() }

// Sync flushes the memtable and waits for all background compactions to
// finish — the quiescence barrier after which the on-disk state is
// deterministic. It surfaces any pending background compaction error. With
// synchronous compaction it is equivalent to Flush.
func (l *LSMIndex) Sync() error { return l.ix.Sync() }

// Count returns the number of indexed series.
func (l *LSMIndex) Count() int64 { return l.ix.Count() }

// NumRuns returns the number of on-disk sorted runs.
func (l *LSMIndex) NumRuns() int { return l.ix.NumRuns() }

// SizeBytes returns the total size of all runs.
func (l *LSMIndex) SizeBytes() int64 { return l.ix.SizeBytes() }

// Degraded reports whether corrupt runs or partitions were quarantined by
// an AllowDegraded open; answers cover only the healthy remainder.
func (l *LSMIndex) Degraded() bool { return l.ix.Degraded() }

// Repair re-derives every quarantined run from the raw dataset (the index
// key of a record is a pure function of its bytes), commits the repaired
// manifest, and deletes the corrupt files. After a successful Repair the
// index answers byte-identically to one that never lost the run.
func (l *LSMIndex) Repair() error { return l.ix.RebuildQuarantined() }

// CacheStats is a snapshot of the shared decoded-block cache's counters:
// hits, misses, evictions, resident bytes, and the configured budget. An
// uncompressed index reads no cache, so its counters stay zero.
type CacheStats = blockcache.Stats

// CacheStats reports the handle's block-cache counters — one cache serves
// all runs and partitions, so these are whole-index numbers. Use the
// hit/miss ratio under a representative query load to size
// Config.CacheBytes.
func (l *LSMIndex) CacheStats() CacheStats {
	if c, ok := l.ix.(interface{ CacheStats() blockcache.Stats }); ok {
		return c.CacheStats()
	}
	return CacheStats{}
}

// Close flushes the memtable, drains background compactions, commits the
// manifest, and releases file handles; the index can later be reopened
// with OpenLSMIndex.
func (l *LSMIndex) Close() error { return l.ix.Close() }

// ZNormalize z-normalizes s in place and returns it. Queries against the
// built-in generators' datasets should be z-normalized.
func ZNormalize(s Series) Series { return s.ZNormalize() }

// Distance returns the Euclidean distance between two equal-length series.
func Distance(a, b Series) (float64, error) { return series.ED(a, b) }
