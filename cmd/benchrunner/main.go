// Command benchrunner regenerates the paper's evaluation tables and
// figures (§5) on the simulated HDD at a chosen scale, printing the same
// rows/series the paper plots.
//
// Usage:
//
//	benchrunner [-scale tiny|default|full] [-figure Fig8a[,Fig9d,...]] [-workers N] [-query-workers N] [-compaction-workers N] [-json file]
//
// With no -figure it runs the complete evaluation in paper order. With
// -json the regenerated tables are also written to the named file as JSON
// (the CI bench-smoke step uses this to track the perf trajectory).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: tiny, default, or full")
	figFlag := flag.String("figure", "", "comma-separated figure ids (default: all)")
	workersFlag := flag.Int("workers", 1, "construction workers (0 = all CPUs; >1 makes I/O traces machine-dependent)")
	queryWorkersFlag := flag.Int("query-workers", 1, "per-query fan-out (0 = all CPUs; answers are identical for any value, but >1 makes visited counts machine-dependent)")
	compactionWorkersFlag := flag.Int("compaction-workers", 2, "LSM background compaction pool size for the IngestLatency figure")
	datasetFlag := flag.String("dataset", "", "dataset family for the generic figures: randomwalk, seismic, astronomy, or skewed (default randomwalk; figures pinned to a specific dataset are unaffected)")
	jsonFlag := flag.String("json", "", "also write the regenerated tables to this file as JSON")
	flag.Parse()

	if *workersFlag < 0 {
		fmt.Fprintf(os.Stderr, "-workers must be at least 1, got %d (0 selects all CPUs)\n", *workersFlag)
		os.Exit(2)
	}
	if *queryWorkersFlag < 0 {
		fmt.Fprintf(os.Stderr, "-query-workers must be at least 1, got %d (0 selects all CPUs)\n", *queryWorkersFlag)
		os.Exit(2)
	}
	if *compactionWorkersFlag < 0 {
		fmt.Fprintf(os.Stderr, "-compaction-workers must be at least 1, got %d (0 takes the default)\n", *compactionWorkersFlag)
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scaleFlag {
	case "tiny":
		sc = experiments.DefaultScale()
		sc.BaseCount = 1000
		sc.Queries = 5
	case "default":
		sc = experiments.DefaultScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	sc.Workers = *workersFlag
	sc.QueryWorkers = *queryWorkersFlag
	sc.CompactionWorkers = *compactionWorkersFlag
	if *datasetFlag != "" {
		if _, err := dataset.ByName(*datasetFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc.Dataset = *datasetFlag
	}

	type figure struct {
		id  string
		run func(experiments.Scale) (*experiments.Table, error)
	}
	figures := []figure{
		{"Fig7", experiments.Fig7Histograms},
		{"Fig8a", experiments.Fig8aConstructionMaterialized},
		{"Fig8b", experiments.Fig8bConstructionNonMaterialized},
		{"Fig8c", experiments.Fig8cSpace},
		{"Fig8d", experiments.Fig8dScaleMaterialized},
		{"Fig8e", experiments.Fig8eScaleNonMaterialized},
		{"Fig8f", experiments.Fig8fVariableLength},
		{"Fig9a", experiments.Fig9aExact},
		{"Fig9b", experiments.Fig9bApprox},
		{"Fig9c", experiments.Fig9cApproxLargest},
		{"Fig9d", experiments.Fig9dApproxQuality},
		{"Fig9e", func(sc experiments.Scale) (*experiments.Table, error) {
			te, _, err := experiments.Fig9ef(sc)
			return te, err
		}},
		{"Fig9f", func(sc experiments.Scale) (*experiments.Table, error) {
			_, tf, err := experiments.Fig9ef(sc)
			return tf, err
		}},
		{"Fig10a", experiments.Fig10aMixedWorkload},
		{"Fig10b", experiments.Fig10bAstronomy},
		{"Fig10c", experiments.Fig10cSeismic},
		{"SizeTable", experiments.IndexSizeTable},
		{"QueryThroughput", experiments.QueryThroughput},
		{"IngestLatency", experiments.IngestLatency},
		{"DistanceKernels", experiments.DistanceKernels},
		{"Reopen", experiments.Reopen},
		{"PartitionScaling", experiments.PartitionScaling},
		{"WALThroughput", experiments.WALThroughput},
		{"ChecksumOverhead", experiments.ChecksumOverhead},
		{"LatencyUnderConcurrency", experiments.LatencyUnderConcurrency},
		{"CompressedRuns", experiments.CompressedRuns},
	}

	want := map[string]bool{}
	if *figFlag != "" {
		for _, id := range strings.Split(*figFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	fmt.Printf("Coconut evaluation — scale=%s (N=%d, len=%d, leaf=%d, queries=%d, workers=%d, query-workers=%d, compaction-workers=%d)\n",
		*scaleFlag, sc.BaseCount, sc.SeriesLen, sc.LeafCap, sc.Queries, sc.Workers, sc.QueryWorkers, sc.CompactionWorkers)
	start := time.Now()
	var ran []*experiments.Table
	for _, f := range figures {
		if len(want) > 0 && !want[f.id] {
			continue
		}
		t0 := time.Now()
		tb, err := f.run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", f.id, err)
			os.Exit(1)
		}
		tb.Print(os.Stdout)
		ran = append(ran, tb)
		fmt.Printf("  (%s regenerated in %v)\n", f.id, time.Since(t0).Round(time.Millisecond))
	}
	if *jsonFlag != "" {
		report := struct {
			Scale   string               `json:"scale"`
			Workers int                  `json:"workers"`
			QueryW  int                  `json:"query_workers"`
			CompW   int                  `json:"compaction_workers"`
			NumCPU  int                  `json:"num_cpu"`
			Tables  []*experiments.Table `json:"tables"`
		}{*scaleFlag, sc.Workers, sc.QueryWorkers, sc.CompactionWorkers, runtime.NumCPU(), ran}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonFlag)
	}
	fmt.Printf("\nAll done in %v\n", time.Since(start).Round(time.Millisecond))
}
