// Command benchrunner regenerates the paper's evaluation tables and
// figures (§5) on the simulated HDD at a chosen scale, printing the same
// rows/series the paper plots.
//
// Usage:
//
//	benchrunner [-scale tiny|default|full] [-figure Fig8a[,Fig9d,...]] [-workers N] [-query-workers N]
//
// With no -figure it runs the complete evaluation in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/coconut-db/coconut/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: tiny, default, or full")
	figFlag := flag.String("figure", "", "comma-separated figure ids (default: all)")
	workersFlag := flag.Int("workers", 1, "construction workers (0 = all CPUs; >1 makes I/O traces machine-dependent)")
	queryWorkersFlag := flag.Int("query-workers", 1, "per-query fan-out (0 = all CPUs; answers are identical for any value, but >1 makes visited counts machine-dependent)")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleFlag {
	case "tiny":
		sc = experiments.DefaultScale()
		sc.BaseCount = 1000
		sc.Queries = 5
	case "default":
		sc = experiments.DefaultScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	sc.Workers = *workersFlag
	sc.QueryWorkers = *queryWorkersFlag

	type figure struct {
		id  string
		run func(experiments.Scale) (*experiments.Table, error)
	}
	figures := []figure{
		{"Fig7", experiments.Fig7Histograms},
		{"Fig8a", experiments.Fig8aConstructionMaterialized},
		{"Fig8b", experiments.Fig8bConstructionNonMaterialized},
		{"Fig8c", experiments.Fig8cSpace},
		{"Fig8d", experiments.Fig8dScaleMaterialized},
		{"Fig8e", experiments.Fig8eScaleNonMaterialized},
		{"Fig8f", experiments.Fig8fVariableLength},
		{"Fig9a", experiments.Fig9aExact},
		{"Fig9b", experiments.Fig9bApprox},
		{"Fig9c", experiments.Fig9cApproxLargest},
		{"Fig9d", experiments.Fig9dApproxQuality},
		{"Fig9e", func(sc experiments.Scale) (*experiments.Table, error) {
			te, _, err := experiments.Fig9ef(sc)
			return te, err
		}},
		{"Fig9f", func(sc experiments.Scale) (*experiments.Table, error) {
			_, tf, err := experiments.Fig9ef(sc)
			return tf, err
		}},
		{"Fig10a", experiments.Fig10aMixedWorkload},
		{"Fig10b", experiments.Fig10bAstronomy},
		{"Fig10c", experiments.Fig10cSeismic},
		{"SizeTable", experiments.IndexSizeTable},
		{"QueryThroughput", experiments.QueryThroughput},
	}

	want := map[string]bool{}
	if *figFlag != "" {
		for _, id := range strings.Split(*figFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	fmt.Printf("Coconut evaluation — scale=%s (N=%d, len=%d, leaf=%d, queries=%d, workers=%d, query-workers=%d)\n",
		*scaleFlag, sc.BaseCount, sc.SeriesLen, sc.LeafCap, sc.Queries, sc.Workers, sc.QueryWorkers)
	start := time.Now()
	for _, f := range figures {
		if len(want) > 0 && !want[f.id] {
			continue
		}
		t0 := time.Now()
		tb, err := f.run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", f.id, err)
			os.Exit(1)
		}
		tb.Print(os.Stdout)
		fmt.Printf("  (%s regenerated in %v)\n", f.id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("\nAll done in %v\n", time.Since(start).Round(time.Millisecond))
}
