// Command datagen writes a data series collection in the raw binary format
// (headerless little-endian float64s) to a directory on disk.
//
// Usage:
//
//	datagen -dir ./data -file walk.bin -kind randomwalk -count 100000 -len 256 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/coconut-db/coconut/internal/dataset"
	"github.com/coconut-db/coconut/internal/storage"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	file := flag.String("file", "data.bin", "output file name")
	kind := flag.String("kind", "randomwalk", "dataset family: randomwalk, seismic, astronomy")
	count := flag.Int("count", 100000, "number of series")
	length := flag.Int("len", 256, "series length")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	gen, err := dataset.ByName(*kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fs, err := storage.NewOSFS(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n, err := dataset.WriteFile(fs, *file, gen, *count, *length, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d %s series of length %d (%d bytes) to %s/%s\n",
		*count, *kind, *length, n, *dir, *file)
}
