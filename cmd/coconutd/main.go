// Command coconutd serves persisted Coconut indexes over HTTP/JSON with
// request-lifecycle robustness built in: every request runs under a
// deadline (the server default, or the client's timeout_ms capped at the
// server maximum), admission control bounds in-flight queries and appends
// (excess load is shed with 429 + Retry-After instead of queueing), and
// SIGINT/SIGTERM triggers a graceful drain — stop accepting, let in-flight
// requests finish under the drain deadline, force-cancel stragglers, then
// Sync+Close every index so the on-disk state reopens clean.
//
// Serve two persisted indexes from a data directory:
//
//	coconutd -dir ./data -indexes myidx,mylsm -addr :7737
//
// Endpoints:
//
//	GET  /healthz   liveness (503 while draining)
//	GET  /stats     counters: in-flight, shed, deadline-exceeded, per-index info
//	GET  /indexes   the served indexes with their generation UUIDs
//	POST /query     {"index":"myidx","series":[...],"mode":"exact|approx|knn",
//	                 "k":5,"radius":1,"timeout_ms":100,"znormalize":true}
//	POST /append    {"index":"mylsm","series":[[...],...]}
//
// -demo serves a freshly built in-memory index named "demo" (for smoke
// tests and experimentation; nothing touches disk).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	coconut "github.com/coconut-db/coconut"
	"github.com/coconut-db/coconut/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("coconutd", flag.ContinueOnError)
	addr := fl.String("addr", ":7737", "listen address")
	dir := fl.String("dir", ".", "directory holding the persisted indexes")
	indexes := fl.String("indexes", "", "comma-separated names of persisted indexes to serve")
	queryWorkers := fl.Int("query-workers", 0, "per-query fan-out (0 = all CPUs; 1 maximizes throughput under load)")
	requestTimeout := fl.Duration("request-timeout", server.Options{}.WithDefaults().DefaultTimeout,
		"default per-request deadline when the client sends no timeout_ms")
	maxTimeout := fl.Duration("max-timeout", server.Options{}.WithDefaults().MaxTimeout,
		"upper bound on client-requested timeouts")
	maxQueries := fl.Int("max-queries", server.Options{}.WithDefaults().MaxInFlightQueries,
		"in-flight query bound; excess requests are shed with 429")
	maxAppends := fl.Int("max-appends", server.Options{}.WithDefaults().MaxInFlightAppends,
		"in-flight append bound; excess requests are shed with 429")
	drainTimeout := fl.Duration("drain-timeout", server.Options{}.WithDefaults().DrainTimeout,
		"graceful-shutdown budget before in-flight requests are force-cancelled")
	demo := fl.Bool("demo", false, "serve a freshly built in-memory demo index named \"demo\"")
	demoCount := fl.Int("demo-count", 2000, "demo dataset size in series")
	demoLen := fl.Int("demo-len", 64, "demo series length")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if *requestTimeout <= 0 {
		return fmt.Errorf("-request-timeout must be positive, got %v", *requestTimeout)
	}
	if *maxTimeout <= 0 {
		return fmt.Errorf("-max-timeout must be positive, got %v", *maxTimeout)
	}
	if *drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *drainTimeout)
	}
	if *maxQueries < 1 {
		return fmt.Errorf("-max-queries must be at least 1, got %d", *maxQueries)
	}
	if *maxAppends < 1 {
		return fmt.Errorf("-max-appends must be at least 1, got %d", *maxAppends)
	}
	if !*demo && *indexes == "" {
		return errors.New("nothing to serve: pass -indexes or -demo")
	}

	mgr := server.NewManager()
	if *demo {
		h, err := buildDemo(*demoCount, *demoLen, *queryWorkers)
		if err != nil {
			return fmt.Errorf("building demo index: %w", err)
		}
		mgr.Add(h)
		log.Printf("serving demo index: %d series of length %d", *demoCount, *demoLen)
	}
	if *indexes != "" {
		fs, err := coconut.NewDiskStorage(*dir)
		if err != nil {
			return err
		}
		for _, name := range strings.Split(*indexes, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			h, err := server.OpenHandle(context.Background(), coconut.Config{
				Storage:      fs,
				Name:         name,
				QueryWorkers: *queryWorkers,
			})
			if err != nil {
				return fmt.Errorf("opening index %q: %w", name, err)
			}
			mgr.Add(h)
			log.Printf("serving index %q (%s, %d series, uuid %s)", h.Name, h.Variant, h.Count(), h.UUID)
		}
	}

	srv := server.New(mgr, server.Options{
		DefaultTimeout:     *requestTimeout,
		MaxTimeout:         *maxTimeout,
		MaxInFlightQueries: *maxQueries,
		MaxInFlightAppends: *maxAppends,
		DrainTimeout:       *drainTimeout,
	})
	hs := srv.NewHTTPServer(*addr)

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		mgr.CloseAll()
		return err
	case sig := <-sigc:
		log.Printf("received %v, draining (budget %v)", sig, *drainTimeout)
		if err := srv.Shutdown(context.Background(), hs); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errc
		log.Printf("drained cleanly")
		return nil
	}
}

// buildDemo builds a small in-memory Coconut-Tree over a generated
// random-walk dataset and wraps it for serving.
func buildDemo(count, seriesLen, queryWorkers int) (*server.Handle, error) {
	fs := coconut.NewMemStorage()
	if err := coconut.GenerateDataset(fs, "demo.bin", coconut.RandomWalk, count, seriesLen, 1); err != nil {
		return nil, err
	}
	ix, err := coconut.BuildTreeIndex(coconut.Config{
		Storage:      fs,
		Name:         "demo",
		DataFile:     "demo.bin",
		SeriesLen:    seriesLen,
		QueryWorkers: queryWorkers,
	})
	if err != nil {
		return nil, err
	}
	return server.NewTreeHandle("demo", ix, seriesLen), nil
}
