// Command coconut builds and queries Coconut indexes over raw data series
// files on disk.
//
// Build a Coconut-Tree over a dataset (see cmd/datagen for producing one):
//
//	coconut build -dir ./data -data walk.bin -name myidx -len 256
//
// Query it (the query file holds one or more series in the raw format):
//
//	coconut query -dir ./data -data walk.bin -name myidx -len 256 -queries q.bin
//
// Show index statistics:
//
//	coconut info -dir ./data -data walk.bin -name myidx -len 256
//
// Stream new series into a Coconut-LSM index with background compaction,
// reporting ingest latency percentiles:
//
//	coconut stream -dir ./data -data walk.bin -name mylsm -len 256 \
//	    -append extra.bin -background -compaction-workers 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/experiments"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

type config struct {
	fs                *storage.OSFS
	opt               core.Options
	dataFile          string
	queries           string
	radius            int
	approx            bool
	k                 int
	appendFile        string
	batch             int
	background        bool
	compactionWorkers int
}

func parseFlags(args []string) (*config, error) {
	fl := flag.NewFlagSet("coconut", flag.ContinueOnError)
	dir := fl.String("dir", ".", "directory holding the dataset and index files")
	data := fl.String("data", "", "raw dataset file name (required)")
	name := fl.String("name", "coconut", "index name prefix")
	length := fl.Int("len", 256, "series length")
	segments := fl.Int("segments", 16, "SAX segments")
	cardBits := fl.Int("cardbits", 8, "bits per SAX symbol")
	leaf := fl.Int("leaf", 2000, "leaf capacity in records")
	mat := fl.Bool("materialized", false, "store raw series inside the index")
	mem := fl.Int64("mem", 256<<20, "memory budget in bytes")
	workers := fl.Int("workers", 0, "construction workers (0 = all CPUs)")
	queryWorkers := fl.Int("query-workers", 0, "per-query fan-out for exact search (0 = all CPUs)")
	queries := fl.String("queries", "", "query series file (raw format)")
	radius := fl.Int("radius", 1, "approximate-search leaf radius")
	approx := fl.Bool("approx", false, "run approximate instead of exact search")
	k := fl.Int("k", 1, "number of nearest neighbors to return")
	appendFile := fl.String("append", "", "series file to stream into the LSM index (stream command)")
	batch := fl.Int("batch", 1000, "series per Append batch (stream command)")
	background := fl.Bool("background", false, "compact LSM tiers on a background pool instead of inside Append")
	compactionWorkers := fl.Int("compaction-workers", 2, "background compaction pool size (stream command)")
	if err := fl.Parse(args); err != nil {
		return nil, err
	}
	if *data == "" {
		return nil, errors.New("-data is required")
	}
	fs, err := storage.NewOSFS(*dir)
	if err != nil {
		return nil, err
	}
	s, err := summary.NewSummarizer(summary.Params{
		SeriesLen: *length, Segments: *segments, CardBits: *cardBits,
	})
	if err != nil {
		return nil, err
	}
	return &config{
		fs: fs,
		opt: core.Options{
			FS:             fs,
			Name:           *name,
			S:              s,
			RawName:        *data,
			Materialized:   *mat,
			LeafCap:        *leaf,
			MemBudgetBytes: *mem,
			Workers:        *workers,
			QueryWorkers:   *queryWorkers,
		},
		dataFile:          *data,
		queries:           *queries,
		radius:            *radius,
		approx:            *approx,
		k:                 *k,
		appendFile:        *appendFile,
		batch:             *batch,
		background:        *background,
		compactionWorkers: *compactionWorkers,
	}, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: coconut <build|query|info|stream> [flags]")
		os.Exit(2)
	}
	cmd := os.Args[1]
	cfg, err := parseFlags(os.Args[2:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch cmd {
	case "build":
		err = runBuild(cfg)
	case "query":
		err = runQuery(cfg)
	case "info":
		err = runInfo(cfg)
	case "stream":
		err = runStream(cfg)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runBuild(cfg *config) error {
	start := time.Now()
	ix, err := core.BuildTree(cfg.opt)
	if err != nil {
		return err
	}
	defer ix.Close()
	fmt.Printf("built Coconut-Tree %q: %d series, %d leaves (%.0f%% full), %s on disk, in %v\n",
		cfg.opt.Name, ix.Count(), ix.NumLeaves(), ix.AvgLeafFill()*100,
		byteSize(ix.SizeBytes()), time.Since(start).Round(time.Millisecond))
	return nil
}

func runInfo(cfg *config) error {
	ix, err := core.OpenTree(cfg.opt)
	if err != nil {
		return err
	}
	defer ix.Close()
	fmt.Printf("index %q\n  series:    %d\n  leaves:    %d\n  leaf fill: %.0f%%\n  height:    %d\n  size:      %s\n",
		cfg.opt.Name, ix.Count(), ix.NumLeaves(), ix.AvgLeafFill()*100, ix.Height(), byteSize(ix.SizeBytes()))
	return nil
}

func runQuery(cfg *config) error {
	if cfg.queries == "" {
		return errors.New("-queries is required for query")
	}
	ix, err := core.OpenTree(cfg.opt)
	if err != nil {
		return err
	}
	defer ix.Close()

	qf, err := cfg.fs.Open(cfg.queries)
	if err != nil {
		return err
	}
	defer qf.Close()
	r := series.NewReader(storage.NewSequentialReader(qf, 0, -1, 0), cfg.opt.S.Params().SeriesLen)
	qnum := 0
	for {
		q, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		q.ZNormalize()
		start := time.Now()
		if cfg.k > 1 {
			ns, stats, err := ix.ExactSearchKNN(q, cfg.k, cfg.radius)
			if err != nil {
				return err
			}
			fmt.Printf("query %d (%d-NN, visited %d series in %v):\n",
				qnum, cfg.k, stats.VisitedRecords, time.Since(start).Round(time.Microsecond))
			for rank, n := range ns {
				fmt.Printf("  %2d. #%d dist=%.4f\n", rank+1, n.Pos, n.Dist)
			}
			qnum++
			continue
		}
		var res core.Result
		if cfg.approx {
			res, err = ix.ApproxSearch(q, cfg.radius)
		} else {
			res, err = ix.ExactSearch(q, cfg.radius)
		}
		if err != nil {
			return err
		}
		mode := "exact"
		if cfg.approx {
			mode = "approx"
		}
		fmt.Printf("query %d (%s): nearest=#%d dist=%.4f visited=%d series, %d leaves, %v\n",
			qnum, mode, res.Pos, res.Dist, res.VisitedRecords, res.VisitedLeaves,
			time.Since(start).Round(time.Microsecond))
		qnum++
	}
	return nil
}

// runStream bulk-loads a Coconut-LSM index over the dataset, then streams
// the series of -append into it batch by batch, reporting per-Append
// latency percentiles — synchronous compaction inside Append by default,
// background tier-concurrent compaction with -background.
func runStream(cfg *config) error {
	if cfg.appendFile == "" {
		return errors.New("-append is required for stream")
	}
	start := time.Now()
	ix, err := lsm.Build(lsm.Options{
		FS:                   cfg.fs,
		Name:                 cfg.opt.Name,
		S:                    cfg.opt.S,
		RawName:              cfg.dataFile,
		MemBudgetBytes:       cfg.opt.MemBudgetBytes,
		Workers:              cfg.opt.Workers,
		QueryWorkers:         cfg.opt.QueryWorkers,
		BackgroundCompaction: cfg.background,
		CompactionWorkers:    cfg.compactionWorkers,
	})
	if err != nil {
		return err
	}
	defer ix.Close()
	fmt.Printf("bulk-loaded LSM index %q: %d series in %v\n",
		cfg.opt.Name, ix.Count(), time.Since(start).Round(time.Millisecond))

	af, err := cfg.fs.Open(cfg.appendFile)
	if err != nil {
		return err
	}
	defer af.Close()
	r := series.NewReader(storage.NewSequentialReader(af, 0, -1, 0), cfg.opt.S.Params().SeriesLen)
	var (
		lats     []time.Duration
		appended int64
		batch    []series.Series
	)
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		t0 := time.Now()
		if err := ix.Append(batch); err != nil {
			return err
		}
		lats = append(lats, time.Since(t0))
		appended += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	ingestStart := time.Now()
	for {
		s, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		batch = append(batch, s)
		if len(batch) >= cfg.batch {
			if err := flushBatch(); err != nil {
				return err
			}
		}
	}
	if err := flushBatch(); err != nil {
		return err
	}
	if err := ix.Sync(); err != nil {
		return err
	}
	total := time.Since(ingestStart)
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration { return experiments.Percentile(lats, p) }
	mode := "synchronous"
	if cfg.background {
		mode = fmt.Sprintf("background (%d workers)", cfg.compactionWorkers)
	}
	fmt.Printf("streamed %d series in %d batches (%s compaction) in %v\n",
		appended, len(lats), mode, total.Round(time.Millisecond))
	fmt.Printf("  append latency: p50=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		pct(1.0).Round(time.Microsecond))
	fmt.Printf("  index: %d series across %d runs, %s on disk\n",
		ix.Count(), ix.NumRuns(), byteSize(ix.SizeBytes()))
	return nil
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
