// Command coconut builds and queries Coconut indexes over raw data series
// files on disk.
//
// Build a Coconut-Tree over a dataset (see cmd/datagen for producing one):
//
//	coconut build -dir ./data -data walk.bin -name myidx -len 256
//
// Query it (the query file holds one or more series in the raw format):
//
//	coconut query -dir ./data -data walk.bin -name myidx -len 256 -queries q.bin
//
// Show index statistics:
//
//	coconut info -dir ./data -data walk.bin -name myidx -len 256
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/summary"
)

type config struct {
	fs       *storage.OSFS
	opt      core.Options
	dataFile string
	queries  string
	radius   int
	approx   bool
	k        int
}

func parseFlags(args []string) (*config, error) {
	fl := flag.NewFlagSet("coconut", flag.ContinueOnError)
	dir := fl.String("dir", ".", "directory holding the dataset and index files")
	data := fl.String("data", "", "raw dataset file name (required)")
	name := fl.String("name", "coconut", "index name prefix")
	length := fl.Int("len", 256, "series length")
	segments := fl.Int("segments", 16, "SAX segments")
	cardBits := fl.Int("cardbits", 8, "bits per SAX symbol")
	leaf := fl.Int("leaf", 2000, "leaf capacity in records")
	mat := fl.Bool("materialized", false, "store raw series inside the index")
	mem := fl.Int64("mem", 256<<20, "memory budget in bytes")
	workers := fl.Int("workers", 0, "construction workers (0 = all CPUs)")
	queryWorkers := fl.Int("query-workers", 0, "per-query fan-out for exact search (0 = all CPUs)")
	queries := fl.String("queries", "", "query series file (raw format)")
	radius := fl.Int("radius", 1, "approximate-search leaf radius")
	approx := fl.Bool("approx", false, "run approximate instead of exact search")
	k := fl.Int("k", 1, "number of nearest neighbors to return")
	if err := fl.Parse(args); err != nil {
		return nil, err
	}
	if *data == "" {
		return nil, errors.New("-data is required")
	}
	fs, err := storage.NewOSFS(*dir)
	if err != nil {
		return nil, err
	}
	s, err := summary.NewSummarizer(summary.Params{
		SeriesLen: *length, Segments: *segments, CardBits: *cardBits,
	})
	if err != nil {
		return nil, err
	}
	return &config{
		fs: fs,
		opt: core.Options{
			FS:             fs,
			Name:           *name,
			S:              s,
			RawName:        *data,
			Materialized:   *mat,
			LeafCap:        *leaf,
			MemBudgetBytes: *mem,
			Workers:        *workers,
			QueryWorkers:   *queryWorkers,
		},
		dataFile: *data,
		queries:  *queries,
		radius:   *radius,
		approx:   *approx,
		k:        *k,
	}, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: coconut <build|query|info> [flags]")
		os.Exit(2)
	}
	cmd := os.Args[1]
	cfg, err := parseFlags(os.Args[2:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch cmd {
	case "build":
		err = runBuild(cfg)
	case "query":
		err = runQuery(cfg)
	case "info":
		err = runInfo(cfg)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runBuild(cfg *config) error {
	start := time.Now()
	ix, err := core.BuildTree(cfg.opt)
	if err != nil {
		return err
	}
	defer ix.Close()
	fmt.Printf("built Coconut-Tree %q: %d series, %d leaves (%.0f%% full), %s on disk, in %v\n",
		cfg.opt.Name, ix.Count(), ix.NumLeaves(), ix.AvgLeafFill()*100,
		byteSize(ix.SizeBytes()), time.Since(start).Round(time.Millisecond))
	return nil
}

func runInfo(cfg *config) error {
	ix, err := core.OpenTree(cfg.opt)
	if err != nil {
		return err
	}
	defer ix.Close()
	fmt.Printf("index %q\n  series:    %d\n  leaves:    %d\n  leaf fill: %.0f%%\n  height:    %d\n  size:      %s\n",
		cfg.opt.Name, ix.Count(), ix.NumLeaves(), ix.AvgLeafFill()*100, ix.Height(), byteSize(ix.SizeBytes()))
	return nil
}

func runQuery(cfg *config) error {
	if cfg.queries == "" {
		return errors.New("-queries is required for query")
	}
	ix, err := core.OpenTree(cfg.opt)
	if err != nil {
		return err
	}
	defer ix.Close()

	qf, err := cfg.fs.Open(cfg.queries)
	if err != nil {
		return err
	}
	defer qf.Close()
	r := series.NewReader(storage.NewSequentialReader(qf, 0, -1, 0), cfg.opt.S.Params().SeriesLen)
	qnum := 0
	for {
		q, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		q.ZNormalize()
		start := time.Now()
		if cfg.k > 1 {
			ns, stats, err := ix.ExactSearchKNN(q, cfg.k, cfg.radius)
			if err != nil {
				return err
			}
			fmt.Printf("query %d (%d-NN, visited %d series in %v):\n",
				qnum, cfg.k, stats.VisitedRecords, time.Since(start).Round(time.Microsecond))
			for rank, n := range ns {
				fmt.Printf("  %2d. #%d dist=%.4f\n", rank+1, n.Pos, n.Dist)
			}
			qnum++
			continue
		}
		var res core.Result
		if cfg.approx {
			res, err = ix.ApproxSearch(q, cfg.radius)
		} else {
			res, err = ix.ExactSearch(q, cfg.radius)
		}
		if err != nil {
			return err
		}
		mode := "exact"
		if cfg.approx {
			mode = "approx"
		}
		fmt.Printf("query %d (%s): nearest=#%d dist=%.4f visited=%d series, %d leaves, %v\n",
			qnum, mode, res.Pos, res.Dist, res.VisitedRecords, res.VisitedLeaves,
			time.Since(start).Round(time.Microsecond))
		qnum++
	}
	return nil
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
