// Command coconut builds and queries persisted Coconut indexes over raw
// data series files on disk. Building and querying are separate
// invocations over a persisted directory: build commits a versioned,
// checksummed manifest next to the index files, and later query/info/
// stream invocations reopen the index from that manifest — the dataset is
// never re-indexed, and the build-time parameters (series length,
// summarization, leaf size, variant) are read back from the manifest, so
// they need not be repeated.
//
// Build an index over a dataset (see cmd/datagen for producing one):
//
//	coconut build -dir ./data -data walk.bin -name myidx -len 256
//	coconut build -dir ./data -data walk.bin -name mytrie -len 256 -variant trie
//	coconut build -dir ./data -data walk.bin -name mylsm -len 256 -variant lsm
//
// Query it from a fresh process (the query file holds one or more series
// in the raw format):
//
//	coconut query -dir ./data -name myidx -queries q.bin
//
// Show the manifest and index statistics:
//
//	coconut info -dir ./data -name myidx
//
// Stream new series into the persisted Coconut-LSM index with background
// compaction, reporting ingest latency percentiles (the runs survive the
// process — a later stream or query picks up where this one stopped):
//
//	coconut stream -dir ./data -name mylsm -append extra.bin \
//	    -background -compaction-workers 4
//
// Verify every block of every index artifact against its checksums (add
// -repair to rebuild what is re-derivable from the raw dataset):
//
//	coconut scrub -dir ./data -name myidx
//	coconut scrub -dir ./data -name mylsm -repair
//
// Serve the index over HTTP/JSON (the full coconutd front end — deadlines,
// load shedding, graceful drain; see cmd/coconutd for the endpoints and
// for serving several indexes at once):
//
//	coconut serve -dir ./data -name myidx -addr :7737 -timeout 5s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	coconut "github.com/coconut-db/coconut"
	"github.com/coconut-db/coconut/internal/core"
	"github.com/coconut-db/coconut/internal/experiments"
	"github.com/coconut-db/coconut/internal/lsm"
	"github.com/coconut-db/coconut/internal/manifest"
	"github.com/coconut-db/coconut/internal/partition"
	"github.com/coconut-db/coconut/internal/series"
	"github.com/coconut-db/coconut/internal/server"
	"github.com/coconut-db/coconut/internal/storage"
	"github.com/coconut-db/coconut/internal/storage/blockcache"
	"github.com/coconut-db/coconut/internal/summary"
)

type config struct {
	fs                *storage.OSFS
	opt               core.Options
	variant           string
	dataFile          string
	queries           string
	partitions        int
	radius            int
	approx            bool
	k                 int
	appendFile        string
	batch             int
	background        bool
	compactionWorkers int
	disableWAL        bool
	walWindow         time.Duration
	repair            bool
	timeout           time.Duration
	dirPath           string
	addr              string
	noCompression     bool
	cacheBytes        int64
}

func parseFlags(args []string) (*config, error) {
	fl := flag.NewFlagSet("coconut", flag.ContinueOnError)
	dir := fl.String("dir", ".", "directory holding the dataset and index files")
	data := fl.String("data", "", "raw dataset file name (required for build)")
	name := fl.String("name", "coconut", "index name prefix")
	variant := fl.String("variant", "tree", "index variant to build: tree, trie, or lsm")
	length := fl.Int("len", 256, "series length")
	segments := fl.Int("segments", 16, "SAX segments")
	cardBits := fl.Int("cardbits", 8, "bits per SAX symbol")
	leaf := fl.Int("leaf", 2000, "leaf capacity in records")
	mat := fl.Bool("materialized", false, "store raw series inside the index")
	mem := fl.Int64("mem", 256<<20, "memory budget in bytes")
	workers := fl.Int("workers", 0, "construction workers (0 = all CPUs)")
	queryWorkers := fl.Int("query-workers", 0, "per-query fan-out for exact search (0 = all CPUs)")
	queries := fl.String("queries", "", "query series file (raw format)")
	partitions := fl.Int("partitions", 1, "key-range partitions to build (1 = single index; open adopts the stored layout)")
	radius := fl.Int("radius", 1, "approximate-search leaf radius")
	approx := fl.Bool("approx", false, "run approximate instead of exact search")
	k := fl.Int("k", 1, "number of nearest neighbors to return")
	appendFile := fl.String("append", "", "series file to stream into the LSM index (stream command)")
	batch := fl.Int("batch", 1000, "series per Append batch (stream command)")
	background := fl.Bool("background", false, "compact LSM tiers on a background pool instead of inside Append")
	compactionWorkers := fl.Int("compaction-workers", 2, "background compaction pool size (stream command)")
	disableWAL := fl.Bool("disable-wal", false, "turn off the LSM write-ahead log (appends since the last flush are lost on a crash)")
	walWindow := fl.Duration("wal-window", 0, "stretch each WAL group commit by this duration to batch more concurrent appends")
	repair := fl.Bool("repair", false, "after scrubbing, repair corrupt artifacts re-derivable from the raw dataset (scrub command)")
	timeout := fl.Duration("timeout", 30*time.Second, "per-query deadline (query command) / per-request deadline (serve command)")
	addr := fl.String("addr", ":7737", "listen address (serve command)")
	noChecksums := fl.Bool("no-checksums", false, "build in the legacy unchecksummed block format (build command; reads are not verified)")
	noCompression := fl.Bool("no-compression", false, "build LSM runs as flat uncompressed record arrays (build/stream commands; query/info adopt the stored layout)")
	cacheBytes := fl.Int64("cache-bytes", 0, "decoded-block cache budget in bytes for compressed LSM runs (0 = 128MiB default)")
	if err := fl.Parse(args); err != nil {
		return nil, err
	}
	if *partitions < 1 {
		return nil, fmt.Errorf("-partitions must be at least 1, got %d", *partitions)
	}
	if *workers < 0 {
		return nil, fmt.Errorf("-workers must be at least 1, got %d (0 selects all CPUs)", *workers)
	}
	if *queryWorkers < 0 {
		return nil, fmt.Errorf("-query-workers must be at least 1, got %d (0 selects all CPUs)", *queryWorkers)
	}
	if *timeout <= 0 {
		return nil, fmt.Errorf("-timeout must be positive, got %v", *timeout)
	}
	if *cacheBytes < 0 {
		return nil, fmt.Errorf("-cache-bytes must not be negative, got %d (0 selects the default)", *cacheBytes)
	}
	fs, err := storage.NewOSFS(*dir)
	if err != nil {
		return nil, err
	}
	s, err := summary.NewSummarizer(summary.Params{
		SeriesLen: *length, Segments: *segments, CardBits: *cardBits,
	})
	if err != nil {
		return nil, err
	}
	return &config{
		fs: fs,
		opt: core.Options{
			FS:             fs,
			Name:           *name,
			S:              s,
			RawName:        *data,
			Materialized:   *mat,
			LeafCap:        *leaf,
			MemBudgetBytes: *mem,
			Workers:        *workers,
			QueryWorkers:   *queryWorkers,
			Checksums:      !*noChecksums,
		},
		variant:           *variant,
		dataFile:          *data,
		queries:           *queries,
		partitions:        *partitions,
		radius:            *radius,
		approx:            *approx,
		k:                 *k,
		appendFile:        *appendFile,
		batch:             *batch,
		background:        *background,
		compactionWorkers: *compactionWorkers,
		disableWAL:        *disableWAL,
		walWindow:         *walWindow,
		repair:            *repair,
		timeout:           *timeout,
		dirPath:           *dir,
		addr:              *addr,
		noCompression:     *noCompression,
		cacheBytes:        *cacheBytes,
	}, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: coconut <build|query|info|stream|scrub|serve> [flags]")
		os.Exit(2)
	}
	cmd := os.Args[1]
	cfg, err := parseFlags(os.Args[2:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch cmd {
	case "build":
		err = runBuild(cfg)
	case "query":
		err = runQuery(cfg)
	case "info":
		err = runInfo(cfg)
	case "stream":
		err = runStream(cfg)
	case "scrub":
		err = runScrub(cfg)
	case "serve":
		err = runServe(cfg)
	default:
		err = fmt.Errorf("unknown command %q", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runBuild(cfg *config) error {
	if cfg.dataFile == "" {
		return errors.New("-data is required for build")
	}
	start := time.Now()
	part := ""
	if cfg.partitions > 1 {
		part = fmt.Sprintf(" in %d partitions", cfg.partitions)
	}
	switch cfg.variant {
	case "tree":
		var ix interface {
			Count() int64
			NumLeaves() int
			AvgLeafFill() float64
			SizeBytes() int64
			Close() error
		}
		var err error
		if cfg.partitions > 1 {
			ix, err = partition.BuildTree(cfg.opt, cfg.partitions)
		} else {
			ix, err = core.BuildTree(cfg.opt)
		}
		if err != nil {
			return err
		}
		fmt.Printf("built Coconut-Tree %q%s: %d series, %d leaves (%.0f%% full), %s on disk, in %v\n",
			cfg.opt.Name, part, ix.Count(), ix.NumLeaves(), ix.AvgLeafFill()*100,
			byteSize(ix.SizeBytes()), time.Since(start).Round(time.Millisecond))
		return ix.Close()
	case "trie":
		var ix interface {
			Count() int64
			NumLeaves() int
			AvgLeafFill() float64
			SizeBytes() int64
			Close() error
		}
		var err error
		if cfg.partitions > 1 {
			ix, err = partition.BuildTrie(cfg.opt, cfg.partitions)
		} else {
			ix, err = core.BuildTrie(cfg.opt)
		}
		if err != nil {
			return err
		}
		fmt.Printf("built Coconut-Trie %q%s: %d series, %d leaves (%.0f%% full), %s on disk, in %v\n",
			cfg.opt.Name, part, ix.Count(), ix.NumLeaves(), ix.AvgLeafFill()*100,
			byteSize(ix.SizeBytes()), time.Since(start).Round(time.Millisecond))
		return ix.Close()
	case "lsm":
		var ix interface {
			Count() int64
			NumRuns() int
			SizeBytes() int64
			Close() error
		}
		var err error
		if cfg.partitions > 1 {
			ix, err = partition.BuildLSM(cfg.lsmOptions(), cfg.partitions)
		} else {
			ix, err = lsm.Build(cfg.lsmOptions())
		}
		if err != nil {
			return err
		}
		fmt.Printf("built Coconut-LSM %q%s: %d series across %d runs, %s on disk, in %v\n",
			cfg.opt.Name, part, ix.Count(), ix.NumRuns(), byteSize(ix.SizeBytes()),
			time.Since(start).Round(time.Millisecond))
		return ix.Close()
	}
	return fmt.Errorf("unknown variant %q (want tree, trie, or lsm)", cfg.variant)
}

// openOptions derives the open-time options from the persisted manifest:
// the summarization, dataset file, materialization, and leaf capacity come
// from the store, so query/info/stream need only -dir and -name.
func openOptions(cfg *config) (core.Options, *manifest.Manifest, error) {
	m, err := core.LoadManifest(cfg.fs, cfg.opt.Name)
	if err != nil {
		return core.Options{}, nil, err
	}
	if cfg.dataFile != "" && cfg.dataFile != m.RawName {
		return core.Options{}, nil, fmt.Errorf("%w: -data %q, stored index was built over %q",
			manifest.ErrConfigMismatch, cfg.dataFile, m.RawName)
	}
	s, err := summary.NewSummarizer(summary.Params{
		SeriesLen: m.SeriesLen, Segments: m.Segments, CardBits: m.CardBits,
	})
	if err != nil {
		return core.Options{}, nil, err
	}
	opt := cfg.opt
	opt.S = s
	opt.RawName = m.RawName
	opt.Materialized = m.Materialized
	if m.LeafCap != 0 {
		opt.LeafCap = m.LeafCap
	}
	return opt, m, nil
}

func (cfg *config) lsmOptions() lsm.Options {
	return lsm.Options{
		FS:                   cfg.fs,
		Name:                 cfg.opt.Name,
		S:                    cfg.opt.S,
		RawName:              cfg.opt.RawName,
		MemBudgetBytes:       cfg.opt.MemBudgetBytes,
		Workers:              cfg.opt.Workers,
		QueryWorkers:         cfg.opt.QueryWorkers,
		BackgroundCompaction: cfg.background,
		CompactionWorkers:    cfg.compactionWorkers,
		DisableWAL:           cfg.disableWAL,
		WALGroupWindow:       cfg.walWindow,
		Checksums:            cfg.opt.Checksums,
		Compressed:           !cfg.noCompression,
		// One cache per lsmOptions call: partitioned children copy the
		// option struct, so every partition of one index shares this cache
		// (open adopts the stored layout and ignores it for legacy runs).
		Cache: blockcache.New(cfg.cacheBytes),
	}
}

// runScrub verifies every block of every artifact the index's manifest
// references, printing one line per file. With -repair it rebuilds what
// the (verified) raw dataset can re-derive, then re-scrubs. Exits
// non-zero if the final report still holds corruption.
func runScrub(cfg *config) error {
	rep, err := coconut.Scrub(cfg.fs, cfg.opt.Name)
	if err != nil {
		return err
	}
	printScrub(rep)
	if cfg.repair && !rep.Clean() {
		fmt.Println("repairing from raw dataset...")
		rep, err = coconut.Repair(coconut.Config{
			Storage:      cfg.fs,
			Name:         cfg.opt.Name,
			Workers:      cfg.opt.Workers,
			MemoryBudget: cfg.opt.MemBudgetBytes,
		})
		if err != nil {
			return err
		}
		fmt.Println("post-repair scrub:")
		printScrub(rep)
	}
	if n := len(rep.Corrupt()); n > 0 {
		return fmt.Errorf("scrub: %d corrupt artifact(s)", n)
	}
	return nil
}

func printScrub(rep *coconut.ScrubReport) {
	format := "checksummed blocks"
	if !rep.Checksums {
		format = "legacy (no block checksums)"
	}
	fmt.Printf("format: %s\n", format)
	for _, f := range rep.Findings {
		status := "ok"
		if f.Err != nil {
			status = f.Err.Error()
		}
		fmt.Printf("  %-32s %8d units  %s\n", f.File, f.Units, status)
	}
}

func runInfo(cfg *config) error {
	opt, m, err := openOptions(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("index %q (%s)\n  dataset:   %s\n  series:    %d\n  summarization: len=%d segments=%d cardbits=%d\n  materialized:  %v\n",
		cfg.opt.Name, m.Variant, m.RawName, m.Count, m.SeriesLen, m.Segments, m.CardBits, m.Materialized)
	switch m.Variant {
	case manifest.VariantTree:
		ix, err := core.OpenTree(opt)
		if err != nil {
			return err
		}
		defer ix.Close()
		fmt.Printf("  leaves:    %d\n  leaf fill: %.0f%%\n  height:    %d\n  size:      %s\n",
			ix.NumLeaves(), ix.AvgLeafFill()*100, ix.Height(), byteSize(ix.SizeBytes()))
	case manifest.VariantTrie:
		ix, err := core.OpenTrie(opt)
		if err != nil {
			return err
		}
		defer ix.Close()
		fmt.Printf("  leaves:    %d\n  leaf fill: %.0f%%\n  size:      %s\n",
			ix.NumLeaves(), ix.AvgLeafFill()*100, byteSize(ix.SizeBytes()))
	case manifest.VariantLSM:
		layout := "flat records"
		if m.Compressed {
			layout = "block-compressed"
		}
		fmt.Printf("  run layout: %s\n  runs:      %d\n", layout, len(m.LSM.Runs))
		for _, r := range m.LSM.Runs {
			tier := fmt.Sprintf("%d", r.Tier)
			if r.Tier == lsm.BulkTier {
				tier = "bulk"
			}
			fmt.Printf("    %-24s tier=%-4s %d records\n", r.Name, tier, r.Count)
		}
	case manifest.VariantPartitioned:
		fmt.Printf("  partitions: %d (%s children)\n", m.Part.Partitions, m.Part.ChildVariant)
		for _, c := range m.Part.Children {
			cm, err := core.LoadManifest(cfg.fs, c)
			if err != nil {
				return err
			}
			fmt.Printf("    %-24s %d records\n", c, cm.Count)
		}
	}
	return nil
}

// queryFuncs adapts the three reopened variants to a common query surface.
type queryFuncs struct {
	seriesLen int
	exact     func(context.Context, series.Series) (core.Result, error)
	approx    func(context.Context, series.Series) (core.Result, error)
	knn       func(context.Context, series.Series, int) ([]core.Neighbor, core.Result, error)
	close     func() error
}

func openForQuery(cfg *config) (*queryFuncs, error) {
	opt, m, err := openOptions(cfg)
	if err != nil {
		return nil, err
	}
	seriesLen := opt.S.Params().SeriesLen
	switch m.Variant {
	case manifest.VariantTree:
		ix, err := core.OpenTree(opt)
		if err != nil {
			return nil, err
		}
		return &queryFuncs{
			seriesLen: seriesLen,
			exact: func(ctx context.Context, q series.Series) (core.Result, error) {
				return ix.ExactSearchCtx(ctx, q, cfg.radius)
			},
			approx: func(ctx context.Context, q series.Series) (core.Result, error) {
				return ix.ApproxSearchCtx(ctx, q, cfg.radius)
			},
			knn: func(ctx context.Context, q series.Series, k int) ([]core.Neighbor, core.Result, error) {
				return ix.ExactSearchKNNCtx(ctx, q, k, cfg.radius)
			},
			close: ix.Close,
		}, nil
	case manifest.VariantTrie:
		ix, err := core.OpenTrie(opt)
		if err != nil {
			return nil, err
		}
		return &queryFuncs{
			seriesLen: seriesLen,
			exact: func(ctx context.Context, q series.Series) (core.Result, error) {
				return ix.ExactSearchCtx(ctx, q, cfg.radius)
			},
			approx: func(ctx context.Context, q series.Series) (core.Result, error) {
				return ix.ApproxSearchCtx(ctx, q, cfg.radius)
			},
			close: ix.Close,
		}, nil
	case manifest.VariantLSM:
		lopt := cfg.lsmOptions()
		lopt.S, lopt.RawName = opt.S, opt.RawName
		ix, err := lsm.Open(lopt)
		if err != nil {
			return nil, err
		}
		conv := func(r lsm.Result) core.Result {
			return core.Result{Pos: r.Pos, Dist: r.Dist, VisitedRecords: r.VisitedRecords}
		}
		return &queryFuncs{
			seriesLen: seriesLen,
			exact: func(ctx context.Context, q series.Series) (core.Result, error) {
				r, err := ix.ExactSearchCtx(ctx, q)
				return conv(r), err
			},
			approx: func(ctx context.Context, q series.Series) (core.Result, error) {
				r, err := ix.ApproxSearchCtx(ctx, q)
				return conv(r), err
			},
			close: ix.Close,
		}, nil
	case manifest.VariantPartitioned:
		switch m.Part.ChildVariant {
		case manifest.VariantTree:
			ix, err := partition.OpenTree(opt, 0, false)
			if err != nil {
				return nil, err
			}
			return &queryFuncs{
				seriesLen: seriesLen,
				exact: func(ctx context.Context, q series.Series) (core.Result, error) {
					return ix.ExactSearchCtx(ctx, q, cfg.radius)
				},
				approx: func(ctx context.Context, q series.Series) (core.Result, error) {
					return ix.ApproxSearchCtx(ctx, q, cfg.radius)
				},
				knn: func(ctx context.Context, q series.Series, k int) ([]core.Neighbor, core.Result, error) {
					return ix.ExactSearchKNNCtx(ctx, q, k, cfg.radius)
				},
				close: ix.Close,
			}, nil
		case manifest.VariantTrie:
			ix, err := partition.OpenTrie(opt, 0, false)
			if err != nil {
				return nil, err
			}
			return &queryFuncs{
				seriesLen: seriesLen,
				exact: func(ctx context.Context, q series.Series) (core.Result, error) {
					return ix.ExactSearchCtx(ctx, q, cfg.radius)
				},
				approx: func(ctx context.Context, q series.Series) (core.Result, error) {
					return ix.ApproxSearchCtx(ctx, q, cfg.radius)
				},
				close: ix.Close,
			}, nil
		case manifest.VariantLSM:
			lopt := cfg.lsmOptions()
			lopt.S, lopt.RawName = opt.S, opt.RawName
			ix, err := partition.OpenLSM(lopt, 0)
			if err != nil {
				return nil, err
			}
			conv := func(r lsm.Result) core.Result {
				return core.Result{Pos: r.Pos, Dist: r.Dist, VisitedRecords: r.VisitedRecords}
			}
			return &queryFuncs{
				seriesLen: seriesLen,
				exact: func(ctx context.Context, q series.Series) (core.Result, error) {
					r, err := ix.ExactSearchCtx(ctx, q)
					return conv(r), err
				},
				approx: func(ctx context.Context, q series.Series) (core.Result, error) {
					r, err := ix.ApproxSearchCtx(ctx, q)
					return conv(r), err
				},
				close: ix.Close,
			}, nil
		}
	}
	return nil, fmt.Errorf("unknown stored variant %q", m.Variant)
}

func runQuery(cfg *config) error {
	if cfg.queries == "" {
		return errors.New("-queries is required for query")
	}
	ix, err := openForQuery(cfg)
	if err != nil {
		return err
	}
	defer ix.close()

	qf, err := cfg.fs.Open(cfg.queries)
	if err != nil {
		return err
	}
	defer qf.Close()
	r := series.NewReader(storage.NewSequentialReader(qf, 0, -1, 0), ix.seriesLen)
	qnum := 0
	for {
		q, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		q.ZNormalize()
		// Each query runs under its own -timeout deadline; an expired
		// deadline surfaces as context.DeadlineExceeded, never a partial
		// answer.
		ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
		start := time.Now()
		if cfg.k > 1 {
			if ix.knn == nil {
				cancel()
				return errors.New("-k > 1 is only supported on tree indexes")
			}
			ns, stats, err := ix.knn(ctx, q, cfg.k)
			cancel()
			if err != nil {
				return err
			}
			fmt.Printf("query %d (%d-NN, visited %d series in %v):\n",
				qnum, cfg.k, stats.VisitedRecords, time.Since(start).Round(time.Microsecond))
			for rank, n := range ns {
				fmt.Printf("  %2d. #%d dist=%.4f\n", rank+1, n.Pos, n.Dist)
			}
			qnum++
			continue
		}
		var res core.Result
		if cfg.approx {
			res, err = ix.approx(ctx, q)
		} else {
			res, err = ix.exact(ctx, q)
		}
		cancel()
		if err != nil {
			return err
		}
		mode := "exact"
		if cfg.approx {
			mode = "approx"
		}
		fmt.Printf("query %d (%s): nearest=#%d dist=%.4f visited=%d series, %d leaves, %v\n",
			qnum, mode, res.Pos, res.Dist, res.VisitedRecords, res.VisitedLeaves,
			time.Since(start).Round(time.Microsecond))
		qnum++
	}
	return nil
}

// runStream streams the series of -append into a Coconut-LSM index batch
// by batch, reporting per-Append latency percentiles — synchronous
// compaction inside Append by default, background tier-concurrent
// compaction with -background. A persisted index (manifest present) is
// reopened and continues its deterministic flush/compaction sequence;
// otherwise the index is first bulk-loaded over -data.
func runStream(cfg *config) error {
	if cfg.appendFile == "" {
		return errors.New("-append is required for stream")
	}
	start := time.Now()
	var ix interface {
		Append(batch []series.Series) error
		Sync() error
		Count() int64
		NumRuns() int
		SizeBytes() int64
		Close() error
	}
	seriesLen := cfg.opt.S.Params().SeriesLen
	if cfg.fs.Exists(manifest.FileName(cfg.opt.Name)) {
		opt, m, err := openOptions(cfg)
		if err != nil {
			return err
		}
		lopt := cfg.lsmOptions()
		lopt.S, lopt.RawName = opt.S, opt.RawName
		seriesLen = opt.S.Params().SeriesLen
		switch {
		case m.Variant == manifest.VariantLSM:
			if ix, err = lsm.Open(lopt); err != nil {
				return err
			}
		case m.Variant == manifest.VariantPartitioned && m.Part.ChildVariant == manifest.VariantLSM:
			if ix, err = partition.OpenLSM(lopt, 0); err != nil {
				return err
			}
		default:
			return m.CheckVariant(manifest.VariantLSM)
		}
		fmt.Printf("reopened LSM index %q: %d series across %d runs in %v\n",
			cfg.opt.Name, ix.Count(), ix.NumRuns(), time.Since(start).Round(time.Millisecond))
	} else {
		if cfg.dataFile == "" {
			return errors.New("-data is required to bulk-load a new stream index")
		}
		var err error
		if cfg.partitions > 1 {
			ix, err = partition.BuildLSM(cfg.lsmOptions(), cfg.partitions)
		} else {
			ix, err = lsm.Build(cfg.lsmOptions())
		}
		if err != nil {
			return err
		}
		fmt.Printf("bulk-loaded LSM index %q: %d series in %v\n",
			cfg.opt.Name, ix.Count(), time.Since(start).Round(time.Millisecond))
	}
	defer ix.Close()

	af, err := cfg.fs.Open(cfg.appendFile)
	if err != nil {
		return err
	}
	defer af.Close()
	r := series.NewReader(storage.NewSequentialReader(af, 0, -1, 0), seriesLen)
	var (
		lats     []time.Duration
		appended int64
		batch    []series.Series
	)
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		t0 := time.Now()
		if err := ix.Append(batch); err != nil {
			return err
		}
		lats = append(lats, time.Since(t0))
		appended += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	ingestStart := time.Now()
	for {
		s, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		batch = append(batch, s)
		if len(batch) >= cfg.batch {
			if err := flushBatch(); err != nil {
				return err
			}
		}
	}
	if err := flushBatch(); err != nil {
		return err
	}
	if err := ix.Sync(); err != nil {
		return err
	}
	total := time.Since(ingestStart)
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration { return experiments.Percentile(lats, p) }
	mode := "synchronous"
	if cfg.background {
		mode = fmt.Sprintf("background (%d workers)", cfg.compactionWorkers)
	}
	fmt.Printf("streamed %d series in %d batches (%s compaction) in %v\n",
		appended, len(lats), mode, total.Round(time.Millisecond))
	fmt.Printf("  append latency: p50=%v p99=%v max=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		pct(1.0).Round(time.Microsecond))
	fmt.Printf("  index: %d series across %d runs, %s on disk\n",
		ix.Count(), ix.NumRuns(), byteSize(ix.SizeBytes()))
	return nil
}

// runServe serves the persisted index -name over HTTP/JSON, delegating
// the whole request lifecycle — deadlines, admission control, health and
// stats, graceful drain — to the internal/server package coconutd uses.
func runServe(cfg *config) error {
	fs, err := coconut.NewDiskStorage(cfg.dirPath)
	if err != nil {
		return err
	}
	h, err := server.OpenHandle(context.Background(), coconut.Config{
		Storage:      fs,
		Name:         cfg.opt.Name,
		QueryWorkers: cfg.opt.QueryWorkers,
		CacheBytes:   cfg.cacheBytes,
	})
	if err != nil {
		return err
	}
	mgr := server.NewManager()
	mgr.Add(h)
	srv := server.New(mgr, server.Options{DefaultTimeout: cfg.timeout})
	hs := srv.NewHTTPServer(cfg.addr)
	fmt.Printf("serving index %q (%s, %d series) on %s\n", h.Name, h.Variant, h.Count(), cfg.addr)

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		mgr.CloseAll()
		return err
	case sig := <-sigc:
		fmt.Printf("received %v, draining\n", sig)
		if err := srv.Shutdown(context.Background(), hs); err != nil {
			return err
		}
		<-errc
		return nil
	}
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
